"""Periodic processes on top of the event engine.

A :class:`PeriodicProcess` re-schedules itself with a (possibly varying)
period.  It is the building block for subslot ticks, superframe beacons and
periodic routing broadcasts.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sim.engine import Event, SimulationError, Simulator

PeriodSpec = Union[float, Callable[[], float]]


class PeriodicProcess:
    """Invoke a callback periodically.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Either a fixed period in seconds or a zero-argument callable returning
        the next period (used, e.g., for Poisson traffic generation).
    callback:
        Called once per period with no arguments.
    start_delay:
        Delay before the first invocation; defaults to one period.
    """

    def __init__(
        self,
        sim: Simulator,
        period: PeriodSpec,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self._period = period
        self.callback = callback
        self.start_delay = start_delay
        self._event: Optional[Event] = None
        self._running = False
        self.invocations = 0

    def _next_period(self) -> float:
        period = self._period() if callable(self._period) else self._period
        if period < 0:
            raise SimulationError(f"negative period: {period}")
        return period

    def start(self) -> None:
        """Start the process.  Starting an already running process is an error."""
        if self._running:
            raise SimulationError("process already running")
        self._running = True
        delay = self.start_delay if self.start_delay is not None else self._next_period()
        self._event = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        """Stop the process; the pending invocation (if any) is cancelled."""
        self._running = False
        if self._event is not None and self._event.pending:
            self._event.cancel()
        self._event = None

    @property
    def running(self) -> bool:
        return self._running

    def _fire(self) -> None:
        if not self._running:
            return
        self.invocations += 1
        self.callback()
        if self._running:
            self._event = self.sim.schedule(self._next_period(), self._fire)
