"""Named random-number streams.

Each component of the simulation (traffic generators, MAC backoff, channel
error injection, QMA exploration, ...) draws from its own named stream so
that adding or removing one component does not perturb the random sequence
seen by the others.  This mirrors the per-module RNG discipline of OMNeT++
and is what makes experiment repetitions reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngRegistry:
    """A registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with the given name."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def reseed(self, master_seed: int) -> None:
        """Reseed every existing stream from a new master seed."""
        self.master_seed = int(master_seed)
        for name, stream in self._streams.items():
            stream.seed(self._derive_seed(name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
