"""Named random-number streams.

Each component of the simulation (traffic generators, MAC backoff, channel
error injection, QMA exploration, ...) draws from its own named stream so
that adding or removing one component does not perturb the random sequence
seen by the others.  This mirrors the per-module RNG discipline of OMNeT++
and is what makes experiment repetitions reproducible.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Tuple


class RngRegistry:
    """A registry of named, independently seeded ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the stream with the given name."""
        if name not in self._streams:
            self._streams[name] = random.Random(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def reseed(self, master_seed: int) -> None:
        """Reseed every existing stream from a new master seed."""
        self.master_seed = int(master_seed)
        for name, stream in self._streams.items():
            stream.seed(self._derive_seed(name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)


def seed_substreams(seed: int, n: int) -> List["object"]:
    """``n`` independent ``numpy.random.Generator`` substreams of one seed.

    Spawned through :class:`numpy.random.SeedSequence`, so the streams are
    statistically independent of each other (unlike ``seed + i`` offsets)
    and reproducible: the same ``(seed, n)`` always yields the same
    sequence of generators, and substream ``i`` does not change when ``n``
    grows.  Used by the seeded random-topology placement and by the batch
    executor's per-lane construction randomness.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    import numpy.random as npr

    children = npr.SeedSequence(int(seed)).spawn(n)
    return [npr.default_rng(child) for child in children]


def mt_stream_state(stream: random.Random) -> Tuple[List[int], int]:
    """Extract the Mersenne-Twister core state of a ``random.Random``.

    Returns ``(key, pos)``: the 624 32-bit state words and the read
    position, exactly as ``numpy.random.MT19937`` expects them — the
    transplanted bit generator then produces the *identical* 32-bit word
    sequence the ``random.Random`` would have produced.  This is what lets
    the batch executor pre-draw a stream's words in bulk while staying
    bit-identical to scalar ``random()`` / ``choice()`` calls.
    """
    version, internal, _gauss = stream.getstate()
    if version != 3:  # pragma: no cover - CPython has used version 3 since 2.6
        raise ValueError(f"unsupported random.Random state version: {version}")
    key, pos = list(internal[:-1]), internal[-1]
    return key, pos


def transplant_bit_generator(stream: random.Random):
    """A ``numpy.random.MT19937`` continuing ``stream``'s word sequence.

    ``bit_generator.random_raw(k)`` returns the next ``k`` 32-bit words the
    ``random.Random`` would have consumed; the caller owns keeping the two
    sides consistent (after the transplant only one of them may draw).
    """
    import numpy as np

    key, pos = mt_stream_state(stream)
    bit_generator = np.random.MT19937()
    bit_generator.state = {
        "bit_generator": "MT19937",
        "state": {"key": np.array(key, dtype=np.uint32), "pos": int(pos)},
    }
    return bit_generator
