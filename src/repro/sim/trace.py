"""Lightweight trace recording for debugging and analysis.

Components call :meth:`repro.sim.Simulator.record` with a category and a set
of keyword fields.  Records are kept in memory and can be filtered by
category; experiments use them to extract e.g. per-frame reception times or
Q-table snapshots without coupling the protocol code to the analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass
class TraceRecord:
    """A single trace entry."""

    time: float
    category: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceRecorder:
    """In-memory collection of :class:`TraceRecord` objects."""

    def __init__(self, max_records: Optional[int] = None) -> None:
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.dropped = 0

    def record(self, time: float, category: str, fields: Dict[str, Any]) -> None:
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(time, category, dict(fields)))

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category, in chronological order."""
        return [r for r in self.records if r.category == category]

    def categories(self) -> List[str]:
        seen: List[str] = []
        for record in self.records:
            if record.category not in seen:
                seen.append(record.category)
        return seen

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)
