"""Topologies used in the paper's evaluation.

* :func:`hidden_node_topology` — the three-node hidden-terminal scenario of
  Sect. 6.1 (Fig. 6);
* :func:`iot_lab_tree_topology` — the 10-node, depth-4 routing tree of the
  FIT IoT-LAB experiments (Fig. 16);
* :func:`iot_lab_star_topology` — the dense 17-node star (Fig. 17);
* :func:`concentric_topology` — the data-collection topology with 1-4 rings
  around a central sink, i.e. 7 / 19 / 43 / 91 nodes (Fig. 20);
* :func:`random_topology` — uniformly random node placement, used by tests
  and the ALOHA-Q related-work example;
* :class:`Topology` plus the Kauer-style helpers for deriving connectivity
  from positions, transmit power and sensitivity.
"""

from repro.topology.base import FrozenTopologyError, Topology, build_routing_tree
from repro.topology.hidden_node import hidden_node_topology
from repro.topology.iotlab import iot_lab_star_topology, iot_lab_tree_topology
from repro.topology.concentric import concentric_node_count, concentric_topology
from repro.topology.random_topo import random_topology

__all__ = [
    "FrozenTopologyError",
    "Topology",
    "build_routing_tree",
    "concentric_node_count",
    "concentric_topology",
    "hidden_node_topology",
    "iot_lab_star_topology",
    "iot_lab_tree_topology",
    "random_topology",
]
