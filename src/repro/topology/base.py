"""Topology representation and routing-tree construction.

A :class:`Topology` holds node positions, explicit bidirectional links, the
identity of the data sink and (optionally) a routing tree (parent pointers
towards the sink).  Connectivity can either be declared explicitly (the
hidden-node and IoT-LAB scenarios) or derived from positions and a
propagation model, following the procedure of Kauer & Turau that the paper
uses to construct its testbed topologies.

Topologies double as shareable *construction artifacts*: building one
(positions, O(n²) link derivation, routing tree) is the expensive part of
scenario assembly, so the scenario layer caches built topologies and reuses
them across runs of a sweep.  Two mechanisms make that sharing safe:

* every mutating method bumps :attr:`Topology.version`, so a consumer that
  snapshotted derived state (e.g. the channel's link-table skeleton) can
  detect that the topology changed underneath it and invalidate the
  snapshot instead of serving stale rows;
* :meth:`Topology.freeze` seals the topology — further calls to mutating
  methods raise :class:`FrozenTopologyError` — and makes :func:`hash`
  stable, so frozen topologies are safe dictionary keys and safe to hand to
  concurrent runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.phy.propagation import PropagationModel, distance

Position = Tuple[float, float]


class FrozenTopologyError(RuntimeError):
    """Raised when a mutating method is called on a frozen topology."""


@dataclass
class Topology:
    """Node positions, links and (optional) routing tree."""

    positions: Dict[int, Position]
    links: Set[FrozenSet[int]] = field(default_factory=set)
    sink: Optional[int] = None
    parents: Dict[int, int] = field(default_factory=dict)
    name: str = "topology"
    #: Bumped by every mutating method; lets artifact caches detect that a
    #: shared topology changed after their derived state was snapshotted.
    version: int = field(default=0, init=False, compare=False, repr=False)
    _frozen: bool = field(default=False, init=False, compare=False, repr=False)
    _hash: Optional[int] = field(default=None, init=False, compare=False, repr=False)

    # ------------------------------------------------------------- mutability
    @property
    def frozen(self) -> bool:
        """True once :meth:`freeze` sealed the topology."""
        return self._frozen

    def freeze(self) -> "Topology":
        """Seal the topology: mutating methods now raise, :func:`hash` is stable.

        Returns ``self`` so construction chains read naturally
        (``factory(**params).freeze()``).  Freezing is idempotent.  Note
        that only the *methods* are guarded — writing to ``topology.links``
        or ``topology.positions`` directly bypasses both the guard and the
        version counter, which is why all construction code goes through
        the methods.
        """
        self._frozen = True
        return self

    def _mutating(self) -> None:
        """Guard + version bump shared by every mutating method."""
        if self._frozen:
            raise FrozenTopologyError(
                f"topology {self.name!r} is frozen (shared as a cached construction "
                "artifact); build a fresh topology instead of mutating it"
            )
        self.version += 1
        self._hash = None

    def fingerprint(self) -> Tuple:
        """Canonical content tuple (positions, links, sink, parents)."""
        return (
            self.name,
            tuple(sorted(self.positions.items())),
            tuple(sorted(tuple(sorted(link)) for link in self.links)),
            self.sink,
            tuple(sorted(self.parents.items())),
        )

    def __hash__(self) -> int:
        # Content-based so equal frozen topologies hash equally; cached only
        # once frozen (a mutable topology's hash may still change).
        if self._frozen and self._hash is not None:
            return self._hash
        value = hash(self.fingerprint())
        if self._frozen:
            self._hash = value
        return value

    # ------------------------------------------------------------------ nodes
    @property
    def node_ids(self) -> List[int]:
        """All node identifiers in a deterministic order."""
        return sorted(self.positions)

    @property
    def num_nodes(self) -> int:
        return len(self.positions)

    def position(self, node_id: int) -> Position:
        return self.positions[node_id]

    # ------------------------------------------------------------------ links
    def add_link(self, a: int, b: int) -> None:
        """Declare a bidirectional link between two nodes."""
        if a == b:
            raise ValueError("self-links are not allowed")
        if a not in self.positions or b not in self.positions:
            raise KeyError("both endpoints must exist in the topology")
        self._mutating()
        self.links.add(frozenset((a, b)))

    def connected(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self.links

    def neighbours(self, node_id: int) -> List[int]:
        """Nodes sharing a link with ``node_id``."""
        result = []
        for link in self.links:
            if node_id in link:
                (other,) = link - {node_id}
                result.append(other)
        return sorted(result)

    def derive_links(self, model: PropagationModel) -> None:
        """(Re-)derive the link set from positions using a propagation model."""
        self._mutating()
        self.links.clear()
        ids = self.node_ids
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                if model.in_range(self.positions[a], self.positions[b]):
                    self.links.add(frozenset((a, b)))

    # --------------------------------------------------------------- routing
    def build_routing_tree(self, sink: Optional[int] = None) -> Dict[int, int]:
        """Compute parent pointers towards the sink via BFS (minimum hop count)."""
        root = sink if sink is not None else self.sink
        if root is None:
            raise ValueError("a sink must be given to build a routing tree")
        self._mutating()
        self.sink = root
        self.parents = build_routing_tree(self.positions, self.links, root)
        return self.parents

    def parent(self, node_id: int) -> Optional[int]:
        """The next hop towards the sink, or None for the sink itself."""
        if node_id == self.sink:
            return None
        return self.parents.get(node_id)

    def children(self, node_id: int) -> List[int]:
        return sorted(child for child, parent in self.parents.items() if parent == node_id)

    def depth(self) -> int:
        """Depth of the routing tree (number of nodes on the longest root path)."""
        if not self.parents and self.sink is not None:
            return 1 if self.positions else 0
        depths = {self.sink: 1}

        def node_depth(node: int) -> int:
            if node in depths:
                return depths[node]
            parent = self.parents.get(node)
            if parent is None:
                depths[node] = 1
            else:
                depths[node] = node_depth(parent) + 1
            return depths[node]

        return max(node_depth(n) for n in self.positions) if self.positions else 0

    def hop_count(self, node_id: int) -> int:
        """Number of hops from a node to the sink along the routing tree."""
        hops = 0
        current = node_id
        while current != self.sink:
            parent = self.parents.get(current)
            if parent is None:
                raise ValueError(f"node {node_id} has no route to the sink")
            current = parent
            hops += 1
            if hops > len(self.positions):
                raise ValueError("routing tree contains a cycle")
        return hops

    # ------------------------------------------------------------------ misc
    def link_lengths(self) -> List[float]:
        """Lengths of all links (useful for sanity checks in tests)."""
        return [
            distance(self.positions[a], self.positions[b])
            for link in self.links
            for a, b in [tuple(link)]
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Topology({self.name!r}, nodes={self.num_nodes}, links={len(self.links)}, "
            f"sink={self.sink})"
        )


def build_routing_tree(
    positions: Dict[int, Position],
    links: Set[FrozenSet[int]],
    sink: int,
) -> Dict[int, int]:
    """Breadth-first routing tree: every node's parent lies one hop closer to the sink.

    Among equally close candidates the geographically nearest one is chosen,
    mirroring the greedy (GPSR-like) next-hop selection of the paper's
    scalability scenario.
    """
    if sink not in positions:
        raise KeyError(f"sink {sink} is not part of the topology")
    adjacency: Dict[int, List[int]] = {node: [] for node in positions}
    for link in links:
        a, b = tuple(link)
        adjacency[a].append(b)
        adjacency[b].append(a)

    hop_count: Dict[int, int] = {sink: 0}
    queue = deque([sink])
    while queue:
        current = queue.popleft()
        for neighbour in sorted(adjacency[current]):
            if neighbour not in hop_count:
                hop_count[neighbour] = hop_count[current] + 1
                queue.append(neighbour)

    parents: Dict[int, int] = {}
    for node in positions:
        if node == sink:
            continue
        if node not in hop_count:
            raise ValueError(f"node {node} is disconnected from the sink")
        candidates = [
            n for n in adjacency[node] if hop_count.get(n, float("inf")) == hop_count[node] - 1
        ]
        candidates.sort(key=lambda n: (distance(positions[node], positions[n]), n))
        parents[node] = candidates[0]
    return parents
