"""The concentric data-collection topology of the scalability study (Sect. 6.3).

A central sink is surrounded by 1 to 4 rings of nodes; ring ``r`` contains
``6 * 2^(r-1)`` nodes, giving the node counts 7, 19, 43 and 91 evaluated in
Fig. 21 / Fig. 22 of the paper.  Nodes route their data towards the sink
along a minimum-hop tree; nodes of the same or adjacent rings that are
geometrically close are within communication range, producing the multiple
hidden-node constellations the paper mentions.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.phy.propagation import UnitDiskPropagation
from repro.topology.base import Topology

#: The sink is always node 0.
SINK = 0


def concentric_node_count(rings: int) -> int:
    """Total number of nodes for a given number of rings (7, 19, 43, 91)."""
    if rings < 0:
        raise ValueError("rings must be non-negative")
    return 1 + sum(6 * 2 ** (r - 1) for r in range(1, rings + 1))


def concentric_topology(rings: int, ring_spacing: float = 40.0) -> Topology:
    """Build the concentric topology with the given number of rings.

    ``ring_spacing`` is the radial distance between consecutive rings; the
    communication range is chosen as ``1.3 * ring_spacing`` so that nodes
    reach the adjacent ring and their closest neighbours on the same ring
    but not nodes on the far side of the topology.
    """
    if rings < 1:
        raise ValueError("at least one ring is required")
    if ring_spacing <= 0:
        raise ValueError("ring_spacing must be positive")

    positions: Dict[int, Tuple[float, float]] = {SINK: (0.0, 0.0)}
    node_id = 1
    for ring in range(1, rings + 1):
        count = 6 * 2 ** (ring - 1)
        radius = ring * ring_spacing
        for index in range(count):
            angle = 2.0 * math.pi * index / count + (math.pi / count if ring % 2 == 0 else 0.0)
            positions[node_id] = (radius * math.cos(angle), radius * math.sin(angle))
            node_id += 1

    topology = Topology(positions=positions, sink=SINK, name=f"concentric-{rings}-rings")
    topology.derive_links(UnitDiskPropagation(1.3 * ring_spacing))
    topology.build_routing_tree(SINK)
    return topology
