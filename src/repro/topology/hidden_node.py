"""The hidden-node topology of Sect. 6.1 (Fig. 6).

Three nodes on a line: A and C are both within range of the central sink B
but out of range of each other.  A CCA performed at A (or C) therefore only
fails while B is transmitting an ACK; data transmissions of the opposite
node are invisible, which is exactly the hidden-terminal situation QMA is
shown to solve without RTS/CTS.
"""

from __future__ import annotations

from repro.topology.base import Topology

#: Conventional node identifiers for the scenario.
NODE_A = 0
NODE_B = 1  # the sink
NODE_C = 2


def hidden_node_topology(link_distance: float = 50.0) -> Topology:
    """Build the three-node hidden-terminal topology.

    ``link_distance`` is the A-B (and B-C) distance; A and C are twice as far
    apart and therefore hidden from each other when the communication range
    is chosen between ``link_distance`` and ``2 * link_distance``.
    """
    if link_distance <= 0:
        raise ValueError("link_distance must be positive")
    topology = Topology(
        positions={
            NODE_A: (0.0, 0.0),
            NODE_B: (link_distance, 0.0),
            NODE_C: (2.0 * link_distance, 0.0),
        },
        sink=NODE_B,
        name="hidden-node",
    )
    topology.add_link(NODE_A, NODE_B)
    topology.add_link(NODE_B, NODE_C)
    topology.build_routing_tree(NODE_B)
    return topology
