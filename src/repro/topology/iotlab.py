"""FIT IoT-LAB topologies of the paper's testbed verification (Sect. 6.2).

The physical Strasbourg testbed is not available to this reproduction, so
both topologies are rebuilt as simulated node layouts:

* :func:`iot_lab_tree_topology` — the 10-node routing tree of depth 4
  (Fig. 16).  The paper constructs it with the algorithm of Kauer & Turau
  using a transmit power of -9 dBm and a sensitivity of -72 dBm; here the
  logical tree (which is what Fig. 18 reports per-node PDRs for) is laid
  out geometrically such that only parents, children and siblings are in
  communication range, reproducing the hidden-node constellations of the
  testbed.
* :func:`iot_lab_star_topology` — the dense 17-node star (Fig. 17) in which
  every node hears every other node (transmit power 3 dBm, sensitivity
  -90 dBm).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.topology.base import Topology

#: Node identifiers as used on the x-axes of Fig. 18 / Fig. 19.
TREE_SINK = 28
TREE_EDGES: Tuple[Tuple[int, int], ...] = (
    (28, 18),
    (28, 15),
    (18, 36),
    (18, 41),
    (15, 59),
    (15, 19),
    (41, 64),
    (41, 63),
    (59, 2),
)

STAR_CENTER = 34
STAR_LEAVES: Tuple[int, ...] = (2, 4, 6, 8, 10, 20, 24, 30, 38, 48, 52, 54, 56, 58, 60, 62)


def iot_lab_tree_topology(link_distance: float = 20.0) -> Topology:
    """The 10-node, depth-4 tree of the FIT IoT-LAB experiments (Fig. 16).

    Nodes are placed such that each node is within range of its parent, its
    children and its siblings, but not of nodes further away in the tree —
    the constellation the paper describes ("only transmissions of parents
    and children and siblings in the tree interfere with each other").
    """
    children: Dict[int, List[int]] = {}
    for parent, child in TREE_EDGES:
        children.setdefault(parent, []).append(child)

    positions: Dict[int, Tuple[float, float]] = {TREE_SINK: (0.0, 0.0)}
    horizontal_spread = link_distance * 0.9

    def place(node: int, depth: int, x_centre: float, width: float) -> None:
        kids = children.get(node, [])
        for index, child in enumerate(kids):
            if len(kids) == 1:
                x = x_centre
            else:
                x = x_centre - width / 2 + index * width / (len(kids) - 1)
            positions[child] = (x, (depth + 1) * link_distance)
            place(child, depth + 1, x, width / 2)

    place(TREE_SINK, 0, 0.0, horizontal_spread * 2)

    topology = Topology(positions=positions, sink=TREE_SINK, name="iotlab-tree")
    # Links: parent-child plus siblings (nodes with the same parent).
    for parent, child in TREE_EDGES:
        topology.add_link(parent, child)
    for parent, kids in children.items():
        for i, a in enumerate(kids):
            for b in kids[i + 1:]:
                topology.add_link(a, b)
    topology.parents = {child: parent for parent, child in TREE_EDGES}
    return topology


def iot_lab_star_topology(radius: float = 10.0) -> Topology:
    """The dense 17-node star topology of Fig. 17 (every node hears every node)."""
    if radius <= 0:
        raise ValueError("radius must be positive")
    positions: Dict[int, Tuple[float, float]] = {STAR_CENTER: (0.0, 0.0)}
    for index, node in enumerate(STAR_LEAVES):
        angle = 2.0 * math.pi * index / len(STAR_LEAVES)
        positions[node] = (radius * math.cos(angle), radius * math.sin(angle))
    topology = Topology(positions=positions, sink=STAR_CENTER, name="iotlab-star")
    ids = sorted(positions)
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            topology.add_link(a, b)
    topology.parents = {node: STAR_CENTER for node in STAR_LEAVES}
    return topology
