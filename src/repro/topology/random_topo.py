"""Random topologies, used by tests and the ALOHA-Q data-collection example.

The related-work baselines (ALOHA-Q / ALOHA-QIR) were evaluated on randomly
deployed data-collection networks; :func:`random_topology` reproduces such a
deployment: nodes are placed uniformly at random inside a square area, the
sink sits at the centre and connectivity is derived from a unit-disk range.
The generator retries until the network is connected.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.phy.propagation import UnitDiskPropagation
from repro.sim.rng import seed_substreams
from repro.topology.base import Topology


def random_topology(
    num_nodes: int,
    area_size: float = 100.0,
    communication_range: float = 35.0,
    seed: int = 0,
    max_attempts: int = 100,
) -> Topology:
    """Place ``num_nodes`` nodes uniformly at random; node 0 is the central sink."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be at least 1")
    if area_size <= 0 or communication_range <= 0:
        raise ValueError("area_size and communication_range must be positive")
    # Placement randomness comes from a SeedSequence substream, so a future
    # second consumer of the topology seed (e.g. per-attempt jitter) gets its
    # own independent substream instead of perturbing the placements.
    (rng,) = seed_substreams(seed, 1)
    model = UnitDiskPropagation(communication_range)
    for _ in range(max_attempts):
        positions: Dict[int, Tuple[float, float]] = {0: (area_size / 2.0, area_size / 2.0)}
        for node in range(1, num_nodes):
            x, y = rng.uniform(0.0, area_size, size=2)
            positions[node] = (float(x), float(y))
        topology = Topology(positions=positions, sink=0, name=f"random-{num_nodes}")
        topology.derive_links(model)
        try:
            topology.build_routing_tree(0)
        except ValueError:
            continue  # disconnected; try a new placement
        return topology
    raise RuntimeError(
        "could not generate a connected random topology; "
        "increase communication_range or max_attempts"
    )
