"""Four-node hidden-terminal topology for the SINR interference model.

The layout reproduces the asymmetric-link regime the SiNE testbed
demonstrates: with a capture threshold and a carrier-sense range wider
than the decode range, one sender's frames *reach* the sink yet can never
be decoded there, while a nearby sender's frames are captured over them.

All nodes sit on a line (positions in metres)::

    HIDDEN ──── RELAY ──────────── SINK ── NEAR
     -95         -55                 0      20

With the intended unit-disk ranges (``communication_range=100``,
``carrier_sense_range=250``) and the disk model's synthetic log-distance
power budget (0 dBm − 40 dB − 26·log10(d)):

* ``NEAR -> SINK`` (20 m) is a strong link: 26 dB SINR margin over the
  noise floor, and 17.6 dB over HIDDEN's interference — captured even
  during overlap.
* ``HIDDEN -> SINK`` (95 m) is *inside* the communication range, so the
  sink synchronises on (receives energy from) HIDDEN's frames — but the
  8.6 dB SINR against the noise floor alone already misses the default
  10 dB capture threshold: HIDDEN is heard yet never delivers to the sink.
* ``RELAY -> HIDDEN`` (40 m, 18.4 dB margin) works, so HIDDEN *receives*
  frames all run long (RELAY's overheard traffic) while its own uplink —
  the routing tree parents HIDDEN directly on the one-hop SINK link —
  never delivers a single frame: the SiNE ``node1`` regime.
* ``NEAR`` is 115 m from HIDDEN: beyond decode range, inside carrier-sense
  range — NEAR's transmissions drive HIDDEN's CCA busy as pure
  sensed-only energy (``cca_sensed_only_count``).

The explicit links below mirror exactly the unit-disk(100) connectivity of
these positions, so the topology behaves identically whether its links are
kept or re-derived through the propagation model.
"""

from __future__ import annotations

from repro.topology.base import Topology

#: Conventional node identifiers for the scenario.
SINK = 0
NEAR = 1
RELAY = 2
HIDDEN = 3

#: Node positions (metres) on the x-axis.
POSITIONS = {
    SINK: (0.0, 0.0),
    NEAR: (20.0, 0.0),
    RELAY: (-55.0, 0.0),
    HIDDEN: (-95.0, 0.0),
}

#: Unit-disk parameters the scenario is designed for (see module docstring).
COMMUNICATION_RANGE = 100.0
CARRIER_SENSE_RANGE = 250.0


def sinr_hidden_node_topology() -> Topology:
    """Build the four-node SINR hidden-terminal topology."""
    topology = Topology(
        positions=dict(POSITIONS),
        sink=SINK,
        name="sinr-hidden-node",
    )
    # Exactly the unit-disk(100) connectivity of POSITIONS.
    topology.add_link(SINK, NEAR)        # 20 m
    topology.add_link(SINK, RELAY)       # 55 m
    topology.add_link(SINK, HIDDEN)      # 95 m (decodable geometry, SINR-starved)
    topology.add_link(NEAR, RELAY)       # 75 m
    topology.add_link(RELAY, HIDDEN)     # 40 m
    topology.build_routing_tree(SINK)
    return topology
