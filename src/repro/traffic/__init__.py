"""Traffic generators.

The paper's evaluation uses Poisson packet generation with a fixed mean
rate δ (Sect. 6.1 / 6.2), alternating rates (the fluctuating-traffic
experiment of Fig. 12 and the scalability study of Sect. 6.3) and periodic
management traffic.  All generators produce packets by invoking a callback
at generation times and can cap the total number of generated packets
(the paper generates 1000 data packets per source).
"""

from repro.traffic.generators import (
    FluctuatingPoissonTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TrafficGenerator,
)

__all__ = [
    "FluctuatingPoissonTraffic",
    "PeriodicTraffic",
    "PoissonTraffic",
    "TrafficGenerator",
]
