"""Packet generation processes.

A generator owns a callback (typically ``node.generate_packet``) and invokes
it at generation instants.  Generators support

* a start time (the paper starts data generation after a 100 s or 200 s
  warm-up so that the MAC can associate and exchange management traffic),
* an optional cap on the number of generated packets (1000 in the paper),
* deterministic behaviour through the simulator's named RNG streams.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

GenerateCallback = Callable[[], None]


class TrafficGenerator(ABC):
    """Base class of all traffic generators."""

    def __init__(
        self,
        sim: "Simulator",
        callback: GenerateCallback,
        start_time: float = 0.0,
        max_packets: Optional[int] = None,
        rng_name: str = "traffic",
    ) -> None:
        if start_time < 0:
            raise ValueError("start_time must be non-negative")
        if max_packets is not None and max_packets < 0:
            raise ValueError("max_packets must be non-negative")
        self.sim = sim
        self.callback = callback
        self.start_time = start_time
        self.max_packets = max_packets
        self.generated = 0
        self._rng = sim.rng.stream(rng_name)
        self._event = None
        self._running = False

    # ------------------------------------------------------------------ api
    def start(self) -> None:
        """Start generating packets at ``start_time``."""
        if self._running:
            raise RuntimeError("traffic generator already running")
        self._running = True
        first = max(self.start_time, self.sim.now) + self._next_interval()
        self._event = self.sim.schedule_at(first, self._generate)

    def stop(self) -> None:
        self._running = False
        if self._event is not None and self._event.pending:
            self._event.cancel()
        self._event = None

    @property
    def exhausted(self) -> bool:
        """True once the packet cap has been reached."""
        return self.max_packets is not None and self.generated >= self.max_packets

    @property
    def running(self) -> bool:
        return self._running

    # ------------------------------------------------------------- internals
    @abstractmethod
    def _next_interval(self) -> float:
        """Time until the next packet generation."""

    def _generate(self) -> None:
        if not self._running:
            return
        if self.exhausted:
            self._running = False
            return
        self.generated += 1
        self.callback()
        if self.exhausted:
            self._running = False
            return
        self._event = self.sim.schedule(self._next_interval(), self._generate)


class PoissonTraffic(TrafficGenerator):
    """Poisson packet generation with a fixed mean rate (packets per second)."""

    def __init__(
        self,
        sim: "Simulator",
        callback: GenerateCallback,
        rate: float,
        start_time: float = 0.0,
        max_packets: Optional[int] = None,
        rng_name: str = "traffic",
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        super().__init__(sim, callback, start_time, max_packets, rng_name)
        self.rate = rate

    def _next_interval(self) -> float:
        return self._rng.expovariate(self.rate)


class PeriodicTraffic(TrafficGenerator):
    """Deterministic packet generation with a fixed period (management traffic)."""

    def __init__(
        self,
        sim: "Simulator",
        callback: GenerateCallback,
        period: float,
        start_time: float = 0.0,
        max_packets: Optional[int] = None,
        jitter: float = 0.0,
        rng_name: str = "traffic",
    ) -> None:
        if period <= 0:
            raise ValueError("period must be positive")
        if jitter < 0 or jitter >= period:
            raise ValueError("jitter must lie in [0, period)")
        super().__init__(sim, callback, start_time, max_packets, rng_name)
        self.period = period
        self.jitter = jitter

    def _next_interval(self) -> float:
        if self.jitter == 0.0:
            return self.period
        return self.period + self._rng.uniform(-self.jitter, self.jitter)


class FluctuatingPoissonTraffic(TrafficGenerator):
    """Poisson traffic whose rate cycles through a list of phases.

    ``phases`` is a sequence of ``(rate, duration)`` pairs; the generator
    starts with the first phase at ``start_time`` and cycles forever.  This
    reproduces node A of the fluctuating-traffic experiment (alternating
    δ = 10 and δ = 100 for 100 s each) and the δ = 1 / δ = 10 alternation of
    the scalability study.
    """

    def __init__(
        self,
        sim: "Simulator",
        callback: GenerateCallback,
        phases: Sequence[tuple],
        start_time: float = 0.0,
        max_packets: Optional[int] = None,
        rng_name: str = "traffic",
    ) -> None:
        if not phases:
            raise ValueError("at least one phase is required")
        for rate, duration in phases:
            if rate <= 0 or duration <= 0:
                raise ValueError("phase rates and durations must be positive")
        super().__init__(sim, callback, start_time, max_packets, rng_name)
        self.phases = [(float(rate), float(duration)) for rate, duration in phases]
        self.cycle_duration = sum(duration for _, duration in self.phases)

    def current_rate(self, now: Optional[float] = None) -> float:
        """The generation rate in effect at time ``now``."""
        t = self.sim.now if now is None else now
        if t < self.start_time:
            return self.phases[0][0]
        offset = (t - self.start_time) % self.cycle_duration
        for rate, duration in self.phases:
            if offset < duration:
                return rate
            offset -= duration
        return self.phases[-1][0]

    def _next_interval(self) -> float:
        return self._rng.expovariate(self.current_rate())
