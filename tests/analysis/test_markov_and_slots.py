"""Unit tests for the GTS-handshake Markov chain (Fig. 26) and slot utilisation."""

from __future__ import annotations

import pytest

from repro.analysis.markov import (
    AbsorbingMarkovChain,
    expected_handshake_messages,
    gts_handshake_chain,
    handshake_message_curve,
)
from repro.analysis.slots import slot_utilisation
from repro.core.actions import QAction

B, C, S = QAction.QBACKOFF, QAction.QCCA, QAction.QSEND


class TestAbsorbingMarkovChain:
    def test_simple_two_state_chain(self):
        # One transient state that stays with probability 0.5: expected steps = 2.
        chain = AbsorbingMarkovChain([[0.5]])
        assert chain.expected_steps()[0] == pytest.approx(2.0)
        assert chain.absorption_probability()[0] == pytest.approx(1.0)

    def test_invalid_matrices_rejected(self):
        with pytest.raises(ValueError):
            AbsorbingMarkovChain([[0.5, 0.2]])
        with pytest.raises(ValueError):
            AbsorbingMarkovChain([[1.5]])


class TestGtsHandshakeChain:
    def test_perfect_channel_needs_exactly_three_messages(self):
        assert expected_handshake_messages(1.0) == pytest.approx(3.0)

    def test_high_success_probability_matches_paper(self):
        # The paper reports 3.33 messages for p = 0.9.
        assert expected_handshake_messages(0.9) == pytest.approx(3.33, abs=0.01)

    def test_expected_messages_decrease_with_p(self):
        curve = handshake_message_curve([0.1, 0.3, 0.5, 0.7, 0.9, 1.0])
        assert curve == sorted(curve, reverse=True)
        assert curve[-1] == pytest.approx(3.0)

    def test_low_p_explodes(self):
        """The paper's qualitative message: low CAP reliability makes GTS
        allocation prohibitively expensive."""
        assert expected_handshake_messages(0.1) > 10 * expected_handshake_messages(0.9)

    def test_chain_size_scales_with_retries(self):
        assert gts_handshake_chain(0.5, retries=3).num_transient == 12
        assert gts_handshake_chain(0.5, retries=0).num_transient == 3

    def test_more_retries_before_drop_reduce_restarts(self):
        # With more retransmissions per message, fewer full-handshake restarts
        # happen, so fewer messages are needed at low p.
        assert expected_handshake_messages(0.3, retries=7) < expected_handshake_messages(
            0.3, retries=1
        )

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            expected_handshake_messages(0.0)
        with pytest.raises(ValueError):
            expected_handshake_messages(1.5)


class TestSlotUtilisation:
    def test_collision_free_schedule(self):
        policies = {
            0: [S, B, B, B],
            1: [B, B, C, B],
        }
        utilisation = slot_utilisation(policies)
        assert utilisation.collision_free
        assert utilisation.transmitting_nodes(0) == [0]
        assert utilisation.transmitting_nodes(2) == [1]
        assert utilisation.utilised_subslots() == 2
        assert utilisation.node_subslots(0) == {0: S}

    def test_conflicting_schedule_detected(self):
        policies = {0: [S, B], 1: [C, B]}
        utilisation = slot_utilisation(policies)
        assert not utilisation.collision_free
        assert utilisation.transmitting_nodes(0) == [0, 1]

    def test_adjacent_send_conflicts(self):
        policies = {0: [S, B, B, B], 1: [B, S, B, B]}
        utilisation = slot_utilisation(policies)
        assert utilisation.adjacent_send_conflicts(span=1) == [(0, 1)]
        clean = slot_utilisation({0: [S, B, B, B], 1: [B, B, B, S]})
        assert clean.adjacent_send_conflicts(span=1) == []

    def test_mismatched_policy_lengths_rejected(self):
        with pytest.raises(ValueError):
            slot_utilisation({0: [B, B], 1: [B]})

    def test_empty_input(self):
        assert slot_utilisation({}).num_subslots == 0
