"""Unit tests for the statistics helpers and convergence metrics."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import convergence_time, cumulative_q_series, is_stable
from repro.analysis.stats import (
    confidence_interval_95,
    mean,
    rolling_average,
    standard_deviation,
)


class TestStats:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0
        assert standard_deviation([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
            2.138, abs=1e-3
        )
        assert standard_deviation([1.0]) == 0.0

    def test_confidence_interval_properties(self):
        m, half = confidence_interval_95([10.0, 12.0, 8.0, 11.0, 9.0])
        assert m == 10.0
        assert half > 0
        m1, half1 = confidence_interval_95([5.0])
        assert (m1, half1) == (5.0, 0.0)
        assert confidence_interval_95([]) == (0.0, 0.0)

    def test_ci_shrinks_with_more_samples(self):
        small = confidence_interval_95([1.0, 2.0, 3.0])[1]
        large = confidence_interval_95([1.0, 2.0, 3.0] * 10)[1]
        assert large < small

    def test_identical_samples_have_zero_width(self):
        assert confidence_interval_95([4.0] * 10)[1] == 0.0

    def test_rolling_average(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert rolling_average(values, window=2) == [1.0, 1.5, 2.5, 3.5, 4.5]
        assert rolling_average(values, window=10)[-1] == pytest.approx(3.0)
        with pytest.raises(ValueError):
            rolling_average(values, window=0)


class TestConvergence:
    def test_series_split(self):
        history = [(0.0, 1.0), (1.0, 2.0)]
        times, values = cumulative_q_series(history)
        assert times == [0.0, 1.0]
        assert values == [1.0, 2.0]

    def test_stable_series_detected(self):
        history = [(float(i), 5.0) for i in range(20)]
        assert is_stable(history, window=10)
        assert convergence_time(history, window=10) == 0.0

    def test_unstable_then_stable(self):
        history = [(float(i), float(i)) for i in range(10)]
        history += [(float(10 + i), 9.0) for i in range(10)]
        assert not is_stable(history[:10], window=5)
        t = convergence_time(history, window=5, tolerance=0.0)
        assert t == 9.0  # the last sample of the ramp already equals the plateau

    def test_never_stable(self):
        history = [(float(i), float(i)) for i in range(30)]
        assert convergence_time(history, window=5, tolerance=0.0) is None

    def test_short_series(self):
        assert not is_stable([(0.0, 1.0)], window=5)
        assert convergence_time([(0.0, 1.0)], window=5) is None
