"""Build-cache determinism suite: cached == uncached, bit for bit.

The construction cache and the affinity-ordered dispatch are pure
orchestration optimisations — every scalar of every record must be
identical with the cache on and off, at any worker count, under forced LRU
eviction, and across the MAC × propagation (incl. ``fading``) × topology
matrix.  These tests pin that contract; they are what makes
``--no-build-cache`` a debugging tool rather than a correctness switch.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import AFFINITY_REORDER_LIMIT, CampaignRunner
from repro.campaign.spec import Sweep, construction_affinity_key
from repro.experiments.base import MAC_KINDS
from repro.scenario import ARTIFACT_CACHE


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def _run_variants(sweep: Sweep, jobs=(1, 4), cache_sizes=(None,)):
    """Record lists of the sweep under every (jobs, cache on/off) variant."""
    variants = {}
    for job_count in jobs:
        for build_cache in (True, False):
            for cache_size in cache_sizes:
                kwargs = {"jobs": job_count, "build_cache": build_cache}
                if cache_size is not None:
                    kwargs["cache_size"] = cache_size
                with CampaignRunner(**kwargs) as runner:
                    variants[(job_count, build_cache, cache_size)] = runner.run(
                        sweep
                    ).records
    return variants


def _assert_all_equal(variants):
    baseline = next(iter(variants.values()))
    for key, records in variants.items():
        assert records == baseline, f"records differ for variant {key}"
    return baseline


class TestCachedEqualsUncached:
    def test_full_mac_propagation_matrix_hidden_node(self):
        """Every MAC kind × (explicit links, unit-disk, fading) × 2 seeds."""
        sweep = Sweep(
            experiment="hidden-node",
            macs=MAC_KINDS,
            propagations=(None, "unit-disk", "fading"),
            grid={"delta": [25.0]},
            fixed={"packets_per_node": 3, "warmup": 0.5},
            seeds=(0, 1),
        )
        baseline = _assert_all_equal(_run_variants(sweep))
        assert len(baseline) == sweep.size == len(MAC_KINDS) * 3 * 2

    def test_dynamic_channel_path_matrix(self):
        """The dynamic delivery fallback stays bit-identical with the cache.

        Flipping ``DEFAULT_STATIC_LINKS`` (the PR 4 escape hatch) makes
        every channel run the per-delivery path; worker pools are created
        inside the flipped window, so forked workers inherit the setting.
        """
        from repro.phy.channel import WirelessChannel

        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma"),
            propagations=(None, "fading"),
            grid={"delta": [25.0]},
            fixed={"packets_per_node": 3, "warmup": 0.5},
            seeds=(0, 1),
        )
        static = _run_variants(sweep)
        original = WirelessChannel.DEFAULT_STATIC_LINKS
        WirelessChannel.DEFAULT_STATIC_LINKS = False
        try:
            dynamic = _run_variants(sweep)
        finally:
            WirelessChannel.DEFAULT_STATIC_LINKS = original
        _assert_all_equal({**static, **{(k, "dyn"): v for k, v in dynamic.items()}})

    def test_testbed_star_with_link_errors(self):
        """PER rows flow through the cached skeleton (testbed default 2%)."""
        sweep = Sweep(
            experiment="testbed-star",
            macs=("unslotted-csma",),
            propagations=(None, "log-distance"),
            fixed={"packets_per_node": 2, "warmup": 0.3, "delta": 40.0},
            seeds=(0, 1),
        )
        _assert_all_equal(_run_variants(sweep))

    def test_scalability_topology_axis(self):
        """Concentric and seeded random topologies, DSME assembly path."""
        sweep = Sweep(
            experiment="scalability",
            macs=("qma",),
            grid={"topology": ["concentric", "random"]},
            fixed={"duration": 7.0, "warmup": 5.0, "rings": 1, "nodes": 6},
            seeds=(0, 1),
        )
        baseline = _assert_all_equal(_run_variants(sweep))
        assert {r.scenario.params["topology"] for r in baseline} == {
            "concentric", "random",
        }

    def test_forced_lru_eviction(self):
        """cache_size=1 with two alternating construction configs: the
        cache thrashes (evictions observed) yet records stay identical."""
        sweep = Sweep(
            experiment="hidden-node",
            macs=("unslotted-csma",),
            grid={"delta": [25.0], "link_distance": [50.0, 45.0]},
            fixed={"packets_per_node": 3, "warmup": 0.5},
            seeds=(0, 1, 2),
        )
        with CampaignRunner(jobs=1, build_cache=False) as runner:
            reference = runner.run(sweep).records
        evictions_before = ARTIFACT_CACHE.stats()["evictions"]
        # Interleave the two configurations so a one-slot LRU must evict:
        # run the sweep's scenarios in (link_distance-alternating) seed-major
        # order through a cache_size=1 serial runner.
        scenarios = sorted(sweep.scenarios(), key=lambda s: s.seed)
        with CampaignRunner(jobs=1, cache_size=1) as runner:
            records = list(runner.iter_records(scenarios))
        assert ARTIFACT_CACHE.stats()["evictions"] > evictions_before
        by_key = {
            (r.scenario.label): r.metrics for r in records
        }
        for record in reference:
            assert by_key[record.scenario.label] == record.metrics


class TestAffinityDispatch:
    def test_identity_order_skips_reordering(self):
        """Single-configuration sweeps (seeds innermost) are already affine."""
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma"),
            grid={"delta": [10.0, 25.0]},
            fixed={"packets_per_node": 3, "warmup": 0.5},
            seeds=(0, 1),
        )
        runner = CampaignRunner(jobs=4)
        axes = sweep.axes
        deltas = [
            (s.mac, s.propagation, s.seed, {name: s.params[name] for name in axes})
            for s in sweep
        ]
        # delta is a traffic axis -> not construction-relevant -> identity.
        assert runner._affinity_order(sweep, deltas) is None

    def test_construction_axis_groups_runs(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma"),
            grid={"link_distance": [50.0, 45.0]},
            fixed={"packets_per_node": 3, "warmup": 0.5},
            seeds=(0, 1),
        )
        runner = CampaignRunner(jobs=4)
        axes = sweep.axes
        scenarios = sweep.scenarios()
        deltas = [
            (s.mac, s.propagation, s.seed, {name: s.params[name] for name in axes})
            for s in scenarios
        ]
        order = runner._affinity_order(sweep, deltas)
        assert order is not None
        dispatched = [scenarios[i].params["link_distance"] for i in order]
        # Runs sharing construction are consecutive after reordering: the
        # two link_distance groups meet at exactly one boundary.
        changes = sum(1 for a, b in zip(dispatched, dispatched[1:]) if a != b)
        assert changes == 1
        # The stable sort keeps expansion order within each group.
        first = [scenarios[i] for i in order][: len(scenarios) // 2]
        assert [(s.mac, s.seed) for s in first] == [
            ("qma", 0), ("qma", 1), ("unslotted-csma", 0), ("unslotted-csma", 1),
        ]

    def test_reorder_restores_expansion_order(self):
        order = [2, 0, 3, 1, 4]
        results = [f"record-{index}" for index in order]  # dispatch order
        restored = list(CampaignRunner._reorder(iter(results), order))
        assert restored == ["record-0", "record-1", "record-2", "record-3", "record-4"]

    def test_seeded_construction_groups_by_seed_across_macs(self):
        key_a = construction_affinity_key(
            "hidden-node", "fading", 3, {"packets_per_node": 3}
        )
        key_b = construction_affinity_key(
            "hidden-node", "fading", 3, {"packets_per_node": 3}
        )
        key_c = construction_affinity_key(
            "hidden-node", "fading", 4, {"packets_per_node": 3}
        )
        assert key_a == key_b
        assert key_a != key_c
        pinned = {"propagation_params": {"seed": 7}}
        assert construction_affinity_key(
            "hidden-node", "fading", 3, pinned
        ) == construction_affinity_key("hidden-node", "fading", 4, pinned)

    def test_large_sweeps_fall_back_to_lazy_dispatch(self):
        assert AFFINITY_REORDER_LIMIT >= 10_000  # documented constant exists
