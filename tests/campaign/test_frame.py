"""Tests for ResultFrame, the streaming record sinks and CampaignRunner.stream."""

from __future__ import annotations

import json

import pytest

from repro.analysis.stats import StreamingStats, confidence_interval_95
from repro.campaign.frame import (
    CsvRecordSink,
    JsonDocumentSink,
    JsonlRecordSink,
    ResultFrame,
    TableAggregator,
    iter_jsonl,
    load_jsonl,
)
from repro.campaign.records import RunRecord, load_json
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Scenario, Sweep


def _record(mac: str, seed: int, delta: float, pdr: float) -> RunRecord:
    return RunRecord(
        scenario=Scenario(
            experiment="hidden-node", mac=mac, seed=seed, params={"delta": delta}
        ),
        metrics={"pdr": pdr},
    )


@pytest.fixture
def records():
    return [
        _record("qma", 0, 10.0, 0.9),
        _record("qma", 1, 10.0, 1.0),
        _record("unslotted-csma", 0, 10.0, 0.6),
        _record("unslotted-csma", 1, 10.0, 0.8),
    ]


def _tiny_sweep(metrics=None) -> Sweep:
    return Sweep(
        experiment="hidden-node",
        macs=("qma",),
        grid={"delta": [10.0]},
        fixed={"packets_per_node": 8, "warmup": 5.0},
        seeds=(0, 1),
        metrics=metrics,
    )


class TestStreamingStats:
    def test_mean_matches_batch_mean_exactly(self):
        samples = [0.1, 0.2, 0.30000001, 0.7, 1.9]
        stats = StreamingStats()
        for sample in samples:
            stats.push(sample)
        mean, ci = confidence_interval_95(samples)
        assert stats.mean == mean  # running sum == sum() in the same order
        assert stats.ci95()[1] == pytest.approx(ci, rel=1e-12)
        assert stats.n == 5

    def test_degenerate_sizes(self):
        stats = StreamingStats()
        assert stats.ci95() == (0.0, 0.0)
        stats.push(3.0)
        assert stats.ci95() == (3.0, 0.0)


class TestResultFrame:
    def test_columnar_append_and_backfill(self):
        frame = ResultFrame()
        frame.append({"a": 1, "b": 2})
        frame.append({"a": 3, "c": 4})
        assert len(frame) == 2
        assert frame.column("a") == [1, 3]
        assert frame.column("b") == [2, None]
        assert frame.column("c") == [None, 4]
        assert frame.row(1) == {"a": 3, "b": None, "c": 4}
        with pytest.raises(KeyError):
            frame.column("nope")

    def test_from_records_and_aggregate_matches_campaign_result(self, records):
        from repro.campaign.records import CampaignResult

        frame = ResultFrame.from_records(records)
        by_frame = frame.aggregate("pdr", by=("mac",))
        by_result = CampaignResult(records=records).aggregate("pdr", by=("mac",))
        for key, stats in by_result.items():
            assert by_frame[key]["mean"] == stats["mean"]
            assert by_frame[key]["n"] == stats["n"]
            assert by_frame[key]["ci95"] == pytest.approx(stats["ci95"], rel=1e-12)

    def test_aggregate_skips_rows_missing_the_metric(self, records):
        frame = ResultFrame.from_records(records)
        frame.append({"mac": "tdma", "delta": 10.0})  # no pdr cell
        stats = frame.aggregate("pdr", by=("mac",))
        assert ("tdma",) not in stats

    def test_jsonl_and_csv_export(self, records, tmp_path):
        frame = ResultFrame.from_records(records)
        jsonl_path = tmp_path / "rows.jsonl"
        csv_path = tmp_path / "rows.csv"
        assert frame.to_jsonl(str(jsonl_path)) == 4
        assert frame.to_csv(str(csv_path)) == 4
        lines = jsonl_path.read_text().strip().splitlines()
        assert len(lines) == 4
        assert json.loads(lines[0])["pdr"] == 0.9
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("experiment,mac")


class TestSinks:
    def test_jsonl_sink_round_trips_records(self, records, tmp_path):
        path = tmp_path / "records.jsonl"
        sink = JsonlRecordSink(str(path))
        for record in records:
            sink.write(record)
        sink.close()
        assert sink.written == 4
        loaded = list(iter_jsonl(str(path)))
        assert loaded == records
        frame = load_jsonl(str(path))
        assert len(frame) == 4
        assert frame.column("pdr") == [0.9, 1.0, 0.6, 0.8]

    def test_csv_sink_streams_flat_rows(self, records, tmp_path):
        import csv as csv_module

        path = tmp_path / "records.csv"
        sink = CsvRecordSink(str(path))
        for record in records:
            sink.write(record)
        sink.close()
        with open(path, newline="") as handle:
            rows = list(csv_module.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["mac"] == "qma"
        assert float(rows[3]["pdr"]) == 0.8

    def test_csv_sink_declared_columns_survive_missing_first_row(self, records, tmp_path):
        path = tmp_path / "records.csv"
        sink = CsvRecordSink(str(path), columns=("extra_metric",))
        sink.write(records[0])
        later = _record("qma", 7, 10.0, 0.5)
        later.metrics["extra_metric"] = 42.0
        sink.write(later)
        sink.close()
        text = path.read_text()
        assert "extra_metric" in text.splitlines()[0]
        assert "42.0" in text

    def test_json_document_sink_keeps_legacy_format(self, records, tmp_path):
        path = tmp_path / "records.json"
        sink = JsonDocumentSink(str(path))
        for record in records:
            sink.write(record)
        sink.close()
        sink.close()  # idempotent
        loaded = load_json(str(path))
        assert loaded.records == records

    def test_table_aggregator_matches_batch_aggregation(self, records):
        from repro.campaign.records import CampaignResult

        aggregator = TableAggregator(by=("mac", "delta"))
        for record in records:
            aggregator.write(record)
        assert aggregator.metric_names() == ["pdr"]
        groups = aggregator.groups("pdr")
        batch = CampaignResult(records=records).aggregate("pdr", by=("mac", "delta"))
        assert list(groups) == list(batch)  # first-appearance order preserved
        for key, stats in batch.items():
            assert groups[key]["mean"] == stats["mean"]
            assert groups[key]["n"] == stats["n"]


class TestStream:
    def test_stream_collects_a_frame_and_feeds_sinks(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlRecordSink(str(path))
        frame = CampaignRunner(jobs=1).stream(_tiny_sweep(), sinks=[sink])
        assert len(frame) == 2
        assert sink.written == 2
        assert len(list(iter_jsonl(str(path)))) == 2
        assert 0.0 <= frame.column("pdr")[0] <= 1.0

    def test_stream_without_collect_keeps_no_rows(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        sink = JsonlRecordSink(str(path))
        frame = CampaignRunner(jobs=1).stream(_tiny_sweep(), sinks=[sink], collect=False)
        assert len(frame) == 0  # constant memory: nothing retained in-process
        assert sink.written == 2  # ... but everything reached the stream

    def test_stream_closes_sinks_on_error(self, tmp_path):
        class Boom(RuntimeError):
            pass

        class FailingSink(JsonlRecordSink):
            def write(self, record):
                raise Boom()

        sink = FailingSink(str(tmp_path / "x.jsonl"))
        with pytest.raises(Boom):
            CampaignRunner(jobs=1).stream(_tiny_sweep(), sinks=[sink])
        assert sink._handle is None  # closed despite the failure

    def test_stream_matches_run_and_is_worker_count_independent(self):
        sweep = _tiny_sweep(metrics=("pdr", "delay", "attempts"))
        serial = CampaignRunner(jobs=1).stream(sweep)
        parallel = CampaignRunner(jobs=4).stream(sweep)
        batch = CampaignRunner(jobs=1).run(sweep)
        assert list(serial.iter_rows()) == list(parallel.iter_rows())
        assert list(serial.iter_rows()) == [record.row() for record in batch]


class TestTolerantJsonlReader:
    """Crash-truncated streams stay loadable (PR 8 journal hardening)."""

    def _write_stream(self, tmp_path, records, tail=b""):
        path = tmp_path / "stream.jsonl"
        sink = JsonlRecordSink(str(path))
        for record in records:
            sink.write(record)
        sink.close()
        if tail:
            with open(path, "ab") as handle:
                handle.write(tail)
        return str(path)

    def test_truncated_final_line_skipped_with_warning(self, tmp_path, records):
        path = self._write_stream(tmp_path, records, tail=b'{"scenario": {"exp')
        with pytest.warns(RuntimeWarning, match="truncated"):
            loaded = list(iter_jsonl(path))
        assert len(loaded) == len(records)
        assert [r.metrics for r in loaded] == [r.metrics for r in records]

    def test_intact_stream_no_warning(self, tmp_path, records):
        import warnings as warnings_module

        path = self._write_stream(tmp_path, records)
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            loaded = list(iter_jsonl(path))
        assert len(loaded) == len(records)

    def test_iter_jsonl_objects_midfile_error_propagates(self, tmp_path):
        """Only the *final* line is forgiven; mid-file garbage still raises."""
        from repro.campaign.frame import iter_jsonl_objects

        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\ngarbage\n{"ok": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            with open(path) as handle:
                list(iter_jsonl_objects(handle))

    def test_sink_close_fsyncs(self, tmp_path, records, monkeypatch):
        """JsonlRecordSink.close() pushes bytes to disk via os.fsync."""
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.campaign.frame.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        sink = JsonlRecordSink(str(tmp_path / "out.jsonl"))
        sink.write(records[0])
        sink.close()
        assert synced, "close() must fsync the sink's file descriptor"
