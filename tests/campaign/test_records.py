"""Tests for RunRecord / CampaignResult export and aggregation."""

from __future__ import annotations

import csv
import json

import pytest

from repro.analysis.stats import confidence_interval_95
from repro.campaign.records import AmbiguousKeyError, CampaignResult, RunRecord, load_json
from repro.campaign.spec import Scenario


def _record(mac: str, seed: int, delta: float, pdr: float) -> RunRecord:
    return RunRecord(
        scenario=Scenario(
            experiment="hidden-node", mac=mac, seed=seed, params={"delta": delta}
        ),
        metrics={"pdr": pdr},
    )


@pytest.fixture
def campaign() -> CampaignResult:
    return CampaignResult(
        records=[
            _record("qma", 0, 10.0, 0.9),
            _record("qma", 1, 10.0, 1.0),
            _record("unslotted-csma", 0, 10.0, 0.6),
            _record("unslotted-csma", 1, 10.0, 0.8),
        ]
    )


class TestRunRecord:
    def test_value_resolves_metrics_scenario_and_params(self):
        record = _record("qma", 3, 25.0, 0.75)
        assert record.value("pdr") == 0.75
        assert record.value("mac") == "qma"
        assert record.value("seed") == 3
        assert record.value("delta") == 25.0
        assert record.value("experiment") == "hidden-node"
        with pytest.raises(KeyError):
            record.value("does-not-exist")

    def test_value_raises_on_metric_param_ambiguity(self):
        """A metric named like a scenario param must not silently win."""
        record = RunRecord(
            scenario=Scenario(experiment="hidden-node", params={"delta": 10.0}),
            metrics={"delta": 0.5, "pdr": 1.0},
        )
        with pytest.raises(AmbiguousKeyError, match="delta"):
            record.value("delta")
        # The explicit accessors disambiguate.
        assert record.metric("delta") == 0.5
        assert record.param("delta") == 10.0

    def test_value_raises_when_metric_shadows_scenario_field(self):
        record = RunRecord(
            scenario=Scenario(experiment="hidden-node", mac="qma"),
            metrics={"mac": 1.0},
        )
        with pytest.raises(AmbiguousKeyError):
            record.value("mac")

    def test_row_flattens_scenario_and_metrics(self):
        row = _record("qma", 0, 10.0, 0.9).row()
        assert row == {
            "experiment": "hidden-node",
            "mac": "qma",
            "propagation": "",
            "seed": 0,
            "delta": 10.0,
            "pdr": 0.9,
        }


class TestExport:
    def test_json_round_trip(self, campaign, tmp_path):
        path = tmp_path / "records.json"
        text = campaign.to_json(str(path))
        assert json.loads(text)["records"]
        loaded = load_json(str(path))
        assert loaded.records == campaign.records

    def test_csv_has_one_row_per_run(self, campaign, tmp_path):
        path = tmp_path / "records.csv"
        campaign.to_csv(str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 4
        assert rows[0]["experiment"] == "hidden-node"
        assert float(rows[1]["pdr"]) == 1.0
        assert rows[0]["delta"] == "10.0"

    def test_csv_columns_cover_params_and_metrics(self, campaign):
        header = campaign.to_csv().splitlines()[0].split(",")
        assert header[:4] == ["experiment", "mac", "propagation", "seed"]
        assert "delta" in header and "pdr" in header

    def test_csv_header_never_duplicates_colliding_names(self):
        record = RunRecord(
            scenario=Scenario(experiment="scalability", params={"duration": 40.0}),
            metrics={"duration": 40.0, "pdr": 1.0},
        )
        header = CampaignResult(records=[record]).to_csv().splitlines()[0].split(",")
        assert header.count("duration") == 1

    def test_builtin_adapters_avoid_param_metric_collisions(self):
        from repro.campaign.runner import execute_scenario

        record = execute_scenario(
            Scenario(
                experiment="scalability",
                mac="unslotted-csma",
                seed=1,
                params={"rings": 1, "duration": 30.0, "warmup": 15.0},
            )
        )
        assert not set(record.metrics) & set(record.scenario.params)
        assert record.value("duration") == 30.0  # the parameter, not the sim clock
        assert record.metrics["sim_time"] == 30.0


class TestAggregate:
    def test_groups_by_mac_and_matches_stats_helper(self, campaign):
        stats = campaign.aggregate("pdr", by=("mac",))
        mean, ci = confidence_interval_95([0.9, 1.0])
        assert stats[("qma",)] == {"mean": mean, "ci95": ci, "n": 2.0}
        assert stats[("unslotted-csma",)]["mean"] == pytest.approx(0.7)

    def test_group_order_is_first_appearance(self, campaign):
        keys = list(campaign.aggregate("pdr", by=("mac", "delta")))
        assert keys == [("qma", 10.0), ("unslotted-csma", 10.0)]

    def test_metric_and_param_name_unions(self, campaign):
        assert campaign.metric_names() == ["pdr"]
        assert campaign.param_names() == ["delta"]
        assert len(campaign) == 4
