"""Determinism regression tests for the campaign runner.

The engine draws all randomness from named streams seeded by each
scenario's master seed, so a campaign's results must be bit-identical
regardless of worker count, scheduling, or how often it is re-run.  These
tests pin that property down — it is what makes parallel sweeps trustworthy.
"""

from __future__ import annotations

import functools

import pytest

from repro.campaign.records import RunRecord
from repro.campaign.runner import CampaignRunner, execute_scenario, map_seeds, resolve_jobs
from repro.campaign.spec import Scenario, Sweep
from repro.experiments.base import MAC_KINDS
from repro.experiments.hidden_node import run_hidden_node


def _fig7_style_sweep() -> Sweep:
    """A tiny fig7-shaped campaign: MAC x delta x seed cross-product."""
    return Sweep(
        experiment="hidden-node",
        macs=("qma", "unslotted-csma"),
        grid={"delta": [10.0, 25.0]},
        fixed={"packets_per_node": 12, "warmup": 5.0},
        seeds=(0, 1),
    )


class TestParallelEqualsSerial:
    def test_fig7_campaign_identical_with_1_and_4_workers(self):
        sweep = _fig7_style_sweep()
        serial = CampaignRunner(jobs=1).run(sweep)
        parallel = CampaignRunner(jobs=4).run(sweep)
        assert len(serial) == len(parallel) == sweep.size == 8
        assert serial.records == parallel.records

    def test_tdma_and_fading_campaign_identical_with_1_and_4_workers(self):
        """The new registry axes keep the parallel == serial guarantee."""
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "tdma"),
            propagations=(None, "fading"),
            grid={"delta": [10.0]},
            fixed={"packets_per_node": 10, "warmup": 5.0},
            # Seed 1's first shadowing draw disconnects the topology; the
            # builder's deterministic redraw must keep the campaign running.
            seeds=(0, 1),
        )
        serial = CampaignRunner(jobs=1).run(sweep)
        parallel = CampaignRunner(jobs=4).run(sweep)
        assert len(serial) == sweep.size == 8
        assert serial.records == parallel.records
        assert {r.scenario.mac for r in serial} == {"qma", "tdma"}
        assert {r.scenario.propagation for r in serial} == {None, "fading"}

    def test_metrics_axis_campaign_identical_with_1_and_4_workers(self):
        """Collector selection keeps the parallel == serial guarantee."""
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma"),
            grid={"delta": [10.0]},
            fixed={"packets_per_node": 10, "warmup": 5.0},
            seeds=(0, 1),
            metrics=("pdr", "delay", "attempts"),
        )
        serial = CampaignRunner(jobs=1).run(sweep)
        parallel = CampaignRunner(jobs=4).run(sweep)
        assert len(serial) == sweep.size == 4
        assert serial.records == parallel.records
        for record in serial:
            assert record.scenario.metrics == ("pdr", "delay", "attempts")
            assert set(record.metrics) == {
                "pdr", "packets_generated", "packets_delivered",
                "average_delay", "transmission_attempts", "sim_time",
            }

    def test_collector_selection_never_changes_shared_metric_values(self):
        """The metrics= axis only selects observers: shared scalars match the
        default-collector run exactly, for every registered MAC kind."""
        for mac in MAC_KINDS:
            scenario = dict(
                experiment="hidden-node",
                mac=mac,
                seed=4,
                params={"delta": 10.0, "packets_per_node": 10, "warmup": 5.0},
            )
            full = execute_scenario(Scenario(**scenario))
            subset = execute_scenario(Scenario(**scenario, metrics=("pdr", "queue")))
            for name, value in subset.metrics.items():
                assert full.metrics[name] == value, f"{mac}: {name} drifted"

    def test_keep_raw_results_identical_across_worker_counts(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma",),
            grid={"delta": [10.0]},
            fixed={"packets_per_node": 10, "warmup": 5.0},
            seeds=(0, 1),
        )
        serial = CampaignRunner(jobs=1, keep_raw=True).run(sweep)
        parallel = CampaignRunner(jobs=2, keep_raw=True).run(sweep)
        for left, right in zip(serial, parallel):
            assert left.raw == right.raw


class TestWarmPoolDeterminism:
    """The persistent pool and chunked delta dispatch are orchestration
    details: records must equal serial execution bit for bit."""

    def test_persistent_pool_with_chunking_matches_serial(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma", "tdma"),
            propagations=(None, "fading"),
            grid={"delta": [10.0]},
            fixed={"packets_per_node": 10, "warmup": 5.0},
            seeds=(0, 1),
        )
        serial = CampaignRunner(jobs=1).run(sweep)
        with CampaignRunner(jobs=4, chunksize=3) as runner:
            chunked = runner.run(sweep)
            # Reusing the warm pool for a second pass must not drift either.
            again = runner.run(sweep)
        assert serial.records == chunked.records == again.records
        assert len(serial) == sweep.size == 12

    def test_streaming_through_warm_pool_matches_serial(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma",),
            grid={"delta": [10.0, 25.0]},
            fixed={"packets_per_node": 10, "warmup": 5.0},
            seeds=(0, 1),
        )
        serial = [r.metrics for r in CampaignRunner(jobs=1).iter_records(sweep)]
        with CampaignRunner(jobs=2, chunksize=2) as runner:
            streamed = [r.metrics for r in runner.iter_records(sweep)]
        assert serial == streamed


class TestLinkTableDeterminism:
    """The channel's static link table is a pure acceleration: every MAC
    kind and propagation model must produce identical scalars on the
    link-table and dynamic-fallback paths."""

    @pytest.mark.parametrize("mac", MAC_KINDS)
    @pytest.mark.parametrize("propagation", [None, "unit-disk", "log-distance", "fading"])
    def test_link_table_matches_dynamic_fallback(self, mac, propagation, monkeypatch):
        from repro.phy.channel import WirelessChannel

        scenario = Scenario(
            experiment="hidden-node",
            mac=mac,
            seed=6,
            params={"delta": 10.0, "packets_per_node": 8, "warmup": 5.0},
            propagation=propagation,
        )
        static = execute_scenario(scenario)
        monkeypatch.setattr(WirelessChannel, "DEFAULT_STATIC_LINKS", False)
        dynamic = execute_scenario(scenario)
        assert static.metrics == dynamic.metrics


class TestSeedRepeatability:
    @pytest.mark.parametrize("mac", MAC_KINDS)
    def test_same_seed_twice_yields_identical_metrics(self, mac):
        # MAC_KINDS is the registry view, so this parametrisation covers
        # every registered protocol — including the tdma baseline.
        scenario = Scenario(
            experiment="hidden-node",
            mac=mac,
            seed=5,
            params={"delta": 10.0, "packets_per_node": 10, "warmup": 5.0},
        )
        first = execute_scenario(scenario)
        second = execute_scenario(scenario)
        assert first == second
        assert first.metrics == second.metrics

    @pytest.mark.parametrize("propagation", ["unit-disk", "log-distance", "fading"])
    def test_propagation_models_repeat_with_same_seed(self, propagation):
        scenario = Scenario(
            experiment="hidden-node",
            mac="qma",
            seed=11,
            params={"delta": 10.0, "packets_per_node": 10, "warmup": 5.0},
            propagation=propagation,
        )
        assert execute_scenario(scenario) == execute_scenario(scenario)

    def test_different_seeds_differ(self):
        base = {"delta": 25.0, "packets_per_node": 30, "warmup": 5.0}
        records = [
            execute_scenario(
                Scenario(experiment="hidden-node", mac="unslotted-csma", seed=seed, params=base)
            )
            for seed in (0, 1)
        ]
        assert records[0].metrics != records[1].metrics


class TestAdapters:
    def test_testbed_and_scalability_scenarios_execute(self):
        testbed = execute_scenario(
            Scenario(
                experiment="testbed-star",
                mac="unslotted-csma",
                seed=1,
                params={"delta": 2.0, "packets_per_node": 6, "warmup": 10.0},
            ),
            keep_raw=True,
        )
        assert isinstance(testbed, RunRecord)
        assert 0.0 <= testbed.metrics["overall_pdr"] <= 1.0
        assert testbed.raw.topology == "iotlab-star"

        scalability = execute_scenario(
            Scenario(
                experiment="scalability",
                mac="unslotted-csma",
                seed=1,
                params={"rings": 1, "duration": 40.0, "warmup": 20.0},
            )
        )
        assert scalability.metrics["num_nodes"] == 7.0
        assert 0.0 <= scalability.metrics["secondary_pdr"] <= 1.0

    def test_is_known_metric_is_false_for_unknown_experiment(self):
        from repro.campaign.runner import experiment_metric_names, is_known_metric

        assert not is_known_metric("moon-bounce", "pdr")
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment_metric_names("moon-bounce")

    def test_traced_records_always_carry_trace_dropped(self):
        """Every record of a traced sweep has the same metric set, so the
        streaming CSV header (fixed at the first record) never loses the
        trace_dropped column."""
        record = execute_scenario(
            Scenario(
                experiment="hidden-node",
                mac="qma",
                seed=1,
                params={
                    "delta": 10.0,
                    "packets_per_node": 5,
                    "warmup": 5.0,
                    "trace": True,
                },
            )
        )
        assert record.metrics["trace_dropped"] == 0.0  # present even without drops
        untraced = execute_scenario(
            Scenario(
                experiment="hidden-node",
                mac="qma",
                seed=1,
                params={"delta": 10.0, "packets_per_node": 5, "warmup": 5.0},
            )
        )
        assert "trace_dropped" not in untraced.metrics

    def test_declared_metrics_match_what_adapters_emit(self):
        from repro.campaign.runner import EXPERIMENT_METRICS, is_known_metric

        tiny = {
            "hidden-node": {"delta": 10.0, "packets_per_node": 8, "warmup": 5.0},
            "sinr-hidden-node": {"delta": 10.0, "packets_per_node": 8, "warmup": 2.0},
            "testbed-tree": {"delta": 2.0, "packets_per_node": 4, "warmup": 6.0},
            "testbed-star": {"delta": 2.0, "packets_per_node": 4, "warmup": 6.0},
            "scalability": {"rings": 1, "duration": 30.0, "warmup": 20.0},
        }
        for experiment, declared in EXPERIMENT_METRICS.items():
            record = execute_scenario(
                Scenario(experiment=experiment, mac="unslotted-csma", params=tiny[experiment])
            )
            static = {m for m in record.metrics if not m.startswith("pdr_node_")}
            assert static == set(declared), f"metric drift for {experiment}"
            assert all(is_known_metric(experiment, m) for m in record.metrics)
        assert is_known_metric("testbed-star", "pdr_node_17")
        assert not is_known_metric("hidden-node", "pdr_node_17")
        assert not is_known_metric("hidden-node", "nope")

    def test_records_are_export_ready_without_raw(self):
        record = execute_scenario(
            Scenario(
                experiment="hidden-node",
                mac="qma",
                params={"delta": 10.0, "packets_per_node": 8, "warmup": 5.0},
            )
        )
        assert record.raw is None
        assert set(record.metrics) >= {"pdr", "average_queue_level", "average_delay"}


def _pdr_for_seed(seed: int) -> float:
    return run_hidden_node(
        mac="qma", delta=10.0, packets_per_node=10, warmup=5.0, seed=seed
    ).pdr


class TestMapSeeds:
    def test_parallel_map_matches_serial(self):
        seeds = [0, 1, 2, 3]
        serial = map_seeds(_pdr_for_seed, seeds, jobs=1)
        parallel = map_seeds(_pdr_for_seed, seeds, jobs=4)
        assert serial == parallel
        assert len(serial) == 4

    def test_partial_of_module_function_is_poolable(self):
        run = functools.partial(
            run_hidden_node, mac="qma", delta=10.0, packets_per_node=8, warmup=5.0
        )
        results = map_seeds(lambda seed: run(seed=seed).pdr, [0, 1], jobs=1)
        assert len(results) == 2

    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1
