"""Seed-batch determinism suite: batched == serial, bit for bit.

The lockstep batch executor is a pure orchestration optimisation — every
scalar of every record must be identical whether seeds run one-per-process
or many-per-batch, across the MAC × propagation (incl. ``fading``) ×
interference matrix, at every batch size, for ragged tails (N not
divisible by ``batch_seeds``) and across mid-campaign configuration
switches.  This extends the cached==uncached contract of
``test_build_cache_determinism.py`` to the batch dispatch tier.
"""

from __future__ import annotations

import pytest

from repro.campaign.batch_runner import execute_seed_batch, iter_seed_groups
from repro.campaign.runner import CampaignRunner, execute_scenario
from repro.campaign.spec import Sweep
from repro.experiments.base import MAC_KINDS
from repro.scenario import ARTIFACT_CACHE

#: Short testbed runs: traffic ends quickly and ``max_duration`` caps the
#: post-traffic drain, so each matrix cell stays fast while still crossing
#: warmup, data traffic, ACKs and the learning boundary path.
FAST = {"packets_per_node": 2, "warmup": 0.5, "delta": 40.0, "max_duration": 4.0}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def _records(sweep, **runner_kwargs):
    with CampaignRunner(**runner_kwargs) as runner:
        return runner.run(sweep).records


def _assert_identical(sweep, batch_sizes=(4,), jobs=(1,)):
    baseline = _records(sweep, jobs=1)
    for job_count in jobs:
        for batch_seeds in batch_sizes:
            records = _records(sweep, jobs=job_count, batch_seeds=batch_seeds)
            assert [r.scenario for r in records] == [r.scenario for r in baseline]
            for got, expected in zip(records, baseline):
                assert got.metrics == expected.metrics, (
                    f"jobs={job_count} batch_seeds={batch_seeds} "
                    f"diverged on {got.scenario.label}"
                )
    return baseline


class TestBatchedEqualsSerial:
    def test_all_mac_kinds(self):
        """Every MAC kind: QMA runs the vector kernel, the rest exercise the
        executor's exact serial fallback — both must match per-seed runs."""
        sweep = Sweep(
            experiment="testbed-star",
            macs=MAC_KINDS,
            fixed=dict(FAST),
            seeds=(0, 1, 2, 3),
        )
        _assert_identical(sweep, batch_sizes=(4,))

    @pytest.mark.parametrize(
        "propagation,interference",
        [
            (None, "collision"),
            ("unit-disk", "collision"),
            ("fading", "collision"),
            ("fading", "sinr"),
            ("log-distance", "sinr"),
        ],
    )
    def test_propagation_interference_matrix(self, propagation, interference):
        sweep = Sweep(
            experiment="testbed-star",
            macs=("qma",),
            propagations=(propagation,),
            fixed={**FAST, "interference": interference},
            seeds=(0, 1, 2, 3),
        )
        _assert_identical(sweep, batch_sizes=(1, 4))

    def test_batch_sizes_and_ragged_tails(self):
        """batch_seeds ∈ {1, 4, 16} over 18 seeds: 18 = 16 + 2 and
        18 = 4 * 4 + 2, so both larger sizes leave a ragged tail group."""
        sweep = Sweep(
            experiment="testbed-tree",
            macs=("qma",),
            propagations=("fading",),
            fixed=dict(FAST),
            seeds=tuple(range(18)),
        )
        _assert_identical(sweep, batch_sizes=(1, 4, 16))

    def test_mid_campaign_config_switch(self):
        """Configuration changes mid-sweep (MAC and a parameter axis) break
        the seed streaks; groups must respect the boundaries and records
        stay identical."""
        sweep = Sweep(
            experiment="testbed-star",
            macs=("qma", "unslotted-csma"),
            grid={"delta": [20.0, 40.0]},
            fixed={"packets_per_node": 2, "warmup": 0.5, "max_duration": 4.0},
            seeds=(0, 1, 2),
        )
        _assert_identical(sweep, batch_sizes=(4,), jobs=(1, 2))

    def test_parallel_batched_dispatch(self):
        """Worker-pool batch tasks re-emit records in expansion order."""
        sweep = Sweep(
            experiment="testbed-star",
            macs=("qma",),
            propagations=("fading",),
            fixed=dict(FAST),
            seeds=(0, 1, 2, 3, 4),
        )
        _assert_identical(sweep, batch_sizes=(2,), jobs=(2,))


class TestSeedGrouping:
    def _scenarios(self, **kwargs):
        sweep = Sweep(
            experiment="testbed-star",
            macs=("qma",),
            fixed=dict(FAST),
            **kwargs,
        )
        return sweep.scenarios()

    def test_groups_are_consecutive_and_bounded(self):
        scenarios = self._scenarios(seeds=tuple(range(7)))
        groups = list(iter_seed_groups(scenarios, 3))
        assert [len(g) for g in groups] == [3, 3, 1]
        assert [s.seed for g in groups for s in g] == list(range(7))

    def test_config_switch_splits_groups(self):
        sweep = Sweep(
            experiment="testbed-star",
            macs=("qma", "unslotted-csma"),
            fixed=dict(FAST),
            seeds=(0, 1),
        )
        groups = list(iter_seed_groups(sweep.scenarios(), 8))
        assert [len(g) for g in groups] == [2, 2]
        assert all(len({s.mac for s in g}) == 1 for g in groups)

    def test_non_batchable_experiments_pass_through(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma",),
            grid={"delta": [25.0]},
            fixed={"packets_per_node": 2, "warmup": 0.5},
            seeds=(0, 1, 2),
        )
        scenarios = sweep.scenarios()
        groups = list(iter_seed_groups(scenarios, 4))
        assert [len(g) for g in groups] == [1, 1, 1]
        # execute_seed_batch falls back to per-scenario execution for them.
        records = execute_seed_batch(scenarios)
        reference = [execute_scenario(s) for s in scenarios]
        assert [r.metrics for r in records] == [r.metrics for r in reference]
