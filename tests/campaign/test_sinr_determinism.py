"""SINR determinism suite: the interference PHY through the campaign layer.

The SINR/capture model must satisfy exactly the contract the collision
model already pins in ``test_build_cache_determinism.py``: every scalar of
every record is bit-identical with the build cache on and off, at jobs=1
and jobs=4, on the static link-table fast path and the dynamic delivery
fallback — across the MAC × propagation × topology matrix.  The hidden
node's asymmetric-delivery regime (receives and senses, never delivers)
must survive every variant unchanged.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.experiments.base import MAC_KINDS
from repro.scenario import ARTIFACT_CACHE


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def _run_variants(sweep: Sweep, jobs=(1, 4)):
    """Record lists of the sweep under every (jobs, cache on/off) variant."""
    variants = {}
    for job_count in jobs:
        for build_cache in (True, False):
            with CampaignRunner(jobs=job_count, build_cache=build_cache) as runner:
                variants[(job_count, build_cache)] = runner.run(sweep).records
    return variants


def _assert_all_equal(variants):
    baseline = next(iter(variants.values()))
    for key, records in variants.items():
        assert records == baseline, f"records differ for variant {key}"
    return baseline


class TestSinrHiddenNodeDeterminism:
    def test_full_mac_matrix(self):
        """Every MAC kind × 2 seeds on the SINR hidden-node topology."""
        sweep = Sweep(
            experiment="sinr-hidden-node",
            macs=MAC_KINDS,
            fixed={"packets_per_node": 3, "warmup": 0.5, "delta": 25.0},
            seeds=(0, 1),
        )
        baseline = _assert_all_equal(_run_variants(sweep))
        assert len(baseline) == sweep.size == len(MAC_KINDS) * 2
        # The physics claim holds for every MAC and seed: the hidden node's
        # uplink is SINR-starved — frames arrive but none ever decodes.
        for record in baseline:
            assert record.metrics["hidden_delivered"] == 0.0

    def test_dynamic_channel_path(self):
        """The per-delivery fallback stays bit-identical to the static
        link-table fast path (and to itself, cached/uncached, 1/4 jobs)."""
        from repro.phy.channel import WirelessChannel

        sweep = Sweep(
            experiment="sinr-hidden-node",
            macs=("qma", "unslotted-csma"),
            fixed={"packets_per_node": 3, "warmup": 0.5, "delta": 25.0},
            seeds=(0, 1),
        )
        static = _run_variants(sweep)
        original = WirelessChannel.DEFAULT_STATIC_LINKS
        WirelessChannel.DEFAULT_STATIC_LINKS = False
        try:
            dynamic = _run_variants(sweep)
        finally:
            WirelessChannel.DEFAULT_STATIC_LINKS = original
        _assert_all_equal({**static, **{(k, "dyn"): v for k, v in dynamic.items()}})

    def test_threshold_axis_is_sweepable(self):
        """sinr_threshold_db is a construction axis: 3 dB lets the hidden
        node through (8.6 dB SNR uplink), 10 dB starves it."""
        sweep = Sweep(
            experiment="sinr-hidden-node",
            macs=("unslotted-csma",),
            grid={"sinr_threshold_db": [3.0, 10.0]},
            fixed={"packets_per_node": 5, "warmup": 0.5, "delta": 25.0},
            seeds=(0,),
        )
        records = _assert_all_equal(_run_variants(sweep))
        by_threshold = {
            record.scenario.params["sinr_threshold_db"]: record.metrics
            for record in records
        }
        assert by_threshold[10.0]["hidden_delivered"] == 0.0
        assert by_threshold[3.0]["hidden_delivered"] > 0.0


class TestHiddenNodeInterferenceAxis:
    def test_interference_axis_across_propagations(self):
        """`interference` as an ordinary grid axis over the legacy
        hidden-node experiment, across all power-capable propagation
        models — collision and SINR runs interleave through the same
        cache and worker pools without contaminating each other."""
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma"),
            propagations=("unit-disk", "log-distance", "fading"),
            grid={"interference": ["collision", "sinr"]},
            fixed={"packets_per_node": 3, "warmup": 0.5, "delta": 25.0},
            seeds=(0, 1),
        )
        baseline = _assert_all_equal(_run_variants(sweep))
        assert len(baseline) == sweep.size == 2 * 3 * 2 * 2

    def test_collision_records_unchanged_by_sinr_axis(self):
        """The legacy model's scalars are identical whether collision runs
        alone or interleaved with SINR runs through a shared cache."""
        fixed = {"packets_per_node": 3, "warmup": 0.5, "delta": 25.0}
        alone = Sweep(
            experiment="hidden-node",
            macs=("unslotted-csma",),
            propagations=("unit-disk",),
            fixed=dict(fixed, interference="collision"),
            seeds=(0, 1),
        )
        mixed = Sweep(
            experiment="hidden-node",
            macs=("unslotted-csma",),
            propagations=("unit-disk",),
            grid={"interference": ["collision", "sinr"]},
            fixed=fixed,
            seeds=(0, 1),
        )
        with CampaignRunner(jobs=1, build_cache=False) as runner:
            reference = {
                record.scenario.seed: record.metrics
                for record in runner.run(alone).records
            }
        with CampaignRunner(jobs=1) as runner:
            for record in runner.run(mixed).records:
                if record.scenario.params["interference"] == "collision":
                    assert record.metrics == reference[record.scenario.seed]
