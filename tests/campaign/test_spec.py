"""Tests for the declarative Scenario / Sweep specifications."""

from __future__ import annotations

import pytest

from repro.campaign.spec import EXPERIMENT_KINDS, Scenario, Sweep


class TestScenario:
    def test_round_trips_through_dict(self):
        scenario = Scenario(
            experiment="hidden-node", mac="qma", seed=7, params={"delta": 25.0}
        )
        assert Scenario.from_dict(scenario.to_dict()) == scenario

    def test_label_is_deterministic(self):
        scenario = Scenario(
            experiment="hidden-node", mac="qma", seed=3, params={"b": 2, "a": 1}
        )
        assert scenario.label == "hidden-node qma a=1 b=2 seed=3"

    def test_rejects_unknown_experiment_and_mac(self):
        with pytest.raises(ValueError):
            Scenario(experiment="moon-bounce")
        with pytest.raises(ValueError):
            Scenario(experiment="hidden-node", mac="not-a-mac")
        with pytest.raises(ValueError):
            Scenario(experiment="hidden-node", propagation="not-a-model")
        # tdma is a registered MAC kind since the registry refactor.
        assert Scenario(experiment="hidden-node", mac="tdma").mac == "tdma"
        assert Scenario(experiment="hidden-node", propagation="fading").label == (
            "hidden-node qma propagation=fading seed=0"
        )

    def test_metrics_axis_validated_against_collector_registry(self):
        scenario = Scenario(experiment="hidden-node", metrics=["pdr", "delay"])
        assert scenario.metrics == ("pdr", "delay")  # normalised to a tuple
        assert "metrics=pdr,delay" in scenario.label
        assert Scenario.from_dict(scenario.to_dict()) == scenario
        with pytest.raises(ValueError, match="metric collector"):
            Scenario(experiment="hidden-node", metrics=("not-a-collector",))
        with pytest.raises(ValueError, match="at least one"):
            Scenario(experiment="hidden-node", metrics=())


class TestSweep:
    def test_expansion_is_the_full_cross_product(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "unslotted-csma"),
            grid={"delta": [10, 25, 50]},
            fixed={"packets_per_node": 100},
            seeds=(0, 1),
        )
        scenarios = sweep.scenarios()
        assert len(scenarios) == sweep.size == len(sweep) == 12
        assert {s.mac for s in scenarios} == {"qma", "unslotted-csma"}
        assert {s.params["delta"] for s in scenarios} == {10, 25, 50}
        assert all(s.params["packets_per_node"] == 100 for s in scenarios)

    def test_expansion_order_is_deterministic(self):
        make = lambda: Sweep(
            experiment="scalability",
            macs=("qma", "slotted-csma"),
            grid={"rings": [1, 2]},
            seeds=(0, 1, 2),
        )
        assert make().scenarios() == make().scenarios()
        first = make().scenarios()[0]
        assert (first.mac, first.params["rings"], first.seed) == ("qma", 1, 0)

    def test_axes_are_sorted(self):
        sweep = Sweep(
            experiment="hidden-node", grid={"warmup": [5.0], "delta": [10]}
        )
        assert sweep.axes == ("delta", "warmup")

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            Sweep(experiment="unknown")
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", macs=())
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", macs=("not-a-mac",))
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", propagations=())
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", propagations=("not-a-model",))
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", seeds=())
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", grid={"delta": [10]}, fixed={"delta": 25})
        with pytest.raises(ValueError):
            Sweep(experiment="hidden-node", grid={"delta": []})
        with pytest.raises(ValueError, match="reserved"):
            Sweep(experiment="hidden-node", fixed={"seed": 5})
        with pytest.raises(ValueError, match="reserved"):
            Sweep(experiment="hidden-node", grid={"mac": ["qma"]})
        with pytest.raises(ValueError, match="reserved"):
            Sweep(experiment="hidden-node", grid={"metrics": [["pdr"]]})
        with pytest.raises(ValueError, match="metric collector"):
            Sweep(experiment="hidden-node", metrics=("not-a-collector",))

    def test_metrics_axis_reaches_every_scenario(self):
        sweep = Sweep(
            experiment="hidden-node",
            macs=("qma", "tdma"),
            seeds=(0, 1),
            metrics=["pdr", "queue"],
        )
        scenarios = sweep.scenarios()
        assert len(scenarios) == 4
        assert all(s.metrics == ("pdr", "queue") for s in scenarios)

    def test_every_experiment_kind_is_sweepable(self):
        for experiment in EXPERIMENT_KINDS:
            assert Sweep(experiment=experiment).size == 1
