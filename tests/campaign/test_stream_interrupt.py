"""Interrupt safety of CampaignRunner.stream: Ctrl-C must not orphan state.

A ``KeyboardInterrupt`` raised in the consumer loop (typically inside a
sink write while the user hits Ctrl-C) has to leave the runner's worker
pool terminated and every sink flushed and closed — otherwise an
interrupted checkpointed sweep leaves unreadable output files and zombie
worker processes.
"""

from __future__ import annotations

import pytest

from repro.campaign.frame import JsonlRecordSink, iter_jsonl
from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}


def make_sweep():
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed=FIXED,
        seeds=[0, 1],
    )


class TrippingSink:
    """Records writes, raises the given exception on the Nth write."""

    def __init__(self, trip_at: int, exc: BaseException) -> None:
        self.trip_at = trip_at
        self.exc = exc
        self.writes = 0
        self.closed = False

    def write(self, record) -> None:
        self.writes += 1
        if self.writes == self.trip_at:
            raise self.exc

    def close(self) -> None:
        self.closed = True


@pytest.mark.parametrize("exc_type", [KeyboardInterrupt, RuntimeError])
def test_interrupt_closes_sinks_and_pool(exc_type):
    runner = CampaignRunner(jobs=2)
    tripping = TrippingSink(2, exc_type())
    witness = TrippingSink(10**9, RuntimeError())  # never trips, just observes
    with pytest.raises(exc_type):
        runner.stream(make_sweep(), sinks=[tripping, witness], collect=False)
    assert tripping.closed and witness.closed
    assert runner._pool is None, "worker pool must be terminated on interrupt"


def test_interrupted_jsonl_output_stays_loadable(tmp_path):
    """The flushed prefix of an interrupted JSONL stream reads back cleanly."""
    path = str(tmp_path / "partial.jsonl")
    runner = CampaignRunner()
    jsonl = JsonlRecordSink(path)
    tripping = TrippingSink(3, KeyboardInterrupt())
    with pytest.raises(KeyboardInterrupt):
        # jsonl first: it sees each record before the tripping sink raises.
        runner.stream(make_sweep(), sinks=[jsonl, tripping], collect=False)
    loaded = list(iter_jsonl(path))
    assert len(loaded) == 3  # every record written before the interrupt
    assert tripping.closed


def test_serial_interrupt_also_closes_sinks():
    runner = CampaignRunner(jobs=1)
    tripping = TrippingSink(1, KeyboardInterrupt())
    with pytest.raises(KeyboardInterrupt):
        runner.stream(make_sweep(), sinks=[tripping], collect=False)
    assert tripping.closed
