"""Tests for the persistent warm worker pool and chunked dispatch.

The pool is an orchestration optimisation: records must be bit-identical
to serial execution for every worker count and chunk size, the pool must
be reused across calls (that is the point), and degenerate inputs (empty
sweeps, empty scenario lists) must yield nothing instead of touching the
pool machinery.
"""

from __future__ import annotations

import pytest

from repro.campaign.runner import (
    CampaignRunner,
    ScenarioTemplate,
    map_seeds,
    resolve_chunksize,
)
from repro.campaign.spec import Scenario, Sweep


def _tiny_sweep(seeds=(0, 1), macs=("qma", "unslotted-csma")) -> Sweep:
    return Sweep(
        experiment="hidden-node",
        macs=macs,
        grid={"delta": [10.0]},
        fixed={"packets_per_node": 8, "warmup": 5.0},
        seeds=seeds,
    )


class TestEmptyCampaigns:
    """Regression: an empty campaign must run (to nothing), not crash."""

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_run_on_empty_scenario_list(self, jobs):
        with CampaignRunner(jobs=jobs) as runner:
            assert len(runner.run([])) == 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_iter_records_on_empty_scenario_list(self, jobs):
        with CampaignRunner(jobs=jobs) as runner:
            assert list(runner.iter_records([])) == []

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_stream_on_empty_scenario_list(self, jobs):
        with CampaignRunner(jobs=jobs) as runner:
            assert len(runner.stream([])) == 0

    def test_map_seeds_on_empty_seed_list(self):
        assert map_seeds(lambda seed: seed, [], jobs=4) == []


class TestChunksize:
    def test_auto_formula(self):
        assert resolve_chunksize("auto", 500, 4) == 15  # 500 // 32
        assert resolve_chunksize("auto", 10, 4) == 1
        assert resolve_chunksize("auto", 0, 4) == 1

    def test_explicit_value(self):
        assert resolve_chunksize(7, 500, 4) == 7

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            resolve_chunksize(0, 10, 4)
        with pytest.raises(ValueError):
            CampaignRunner(jobs=2, chunksize=-1)

    def test_pool_config_reports_effective_settings(self):
        runner = CampaignRunner(jobs=4, chunksize="auto")
        assert runner.pool_config(500) == {
            "jobs": 4, "chunksize": 15, "pool": "persistent", "build_cache": True,
            "batch_seeds": 1,
        }
        serial = CampaignRunner(jobs=1)
        assert serial.pool_config(500)["pool"] == "serial"
        cold = CampaignRunner(jobs=4, build_cache=False)
        assert cold.pool_config(500)["build_cache"] is False
        batched = CampaignRunner(jobs=4, batch_seeds=8)
        assert batched.pool_config(500)["batch_seeds"] == 8


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        sweep = _tiny_sweep()
        with CampaignRunner(jobs=2) as runner:
            first = runner.run(sweep)
            raw_pool = runner._pool._pool
            assert raw_pool is not None
            second = runner.run(_tiny_sweep(seeds=(2, 3)))
            # Same template (experiment/fixed/metrics) -> same warm workers.
            assert runner._pool._pool is raw_pool
        assert first.records != second.records  # different seeds, real runs
        assert runner._pool is None  # context exit released the pool

    def test_pool_recreated_when_template_changes(self):
        with CampaignRunner(jobs=2) as runner:
            runner.run(_tiny_sweep())
            raw_pool = runner._pool._pool
            other = Sweep(
                experiment="hidden-node",
                macs=("qma",),
                grid={"delta": [10.0]},
                fixed={"packets_per_node": 6, "warmup": 5.0},  # different fixed
                seeds=(0, 1),
            )
            runner.run(other)
            assert runner._pool._pool is not raw_pool

    def test_serial_runner_never_creates_a_pool(self):
        runner = CampaignRunner(jobs=1)
        runner.run(_tiny_sweep())
        assert runner._pool is None

    def test_close_is_idempotent(self):
        runner = CampaignRunner(jobs=2)
        runner.run(_tiny_sweep())
        runner.close()
        runner.close()
        assert runner._pool is None

    def test_abandoned_iterator_terminates_the_pool(self):
        """Regression: walking away from iter_records must not leave the
        imap feeder executing the rest of the sweep in the background."""
        runner = CampaignRunner(jobs=2)
        iterator = runner.iter_records(_tiny_sweep(seeds=tuple(range(8))))
        first = next(iterator)
        assert first.metrics
        iterator.close()
        assert runner._pool is None  # outstanding tasks died with the pool
        # The runner recovers: the next campaign re-warms a fresh pool.
        records = runner.run(_tiny_sweep()).records
        assert len(records) == 4
        runner.close()


class TestDeltaDispatchEquivalence:
    def test_chunked_delta_dispatch_matches_serial(self):
        sweep = _tiny_sweep()
        serial = CampaignRunner(jobs=1).run(sweep)
        with CampaignRunner(jobs=3, chunksize=4) as runner:
            chunked = runner.run(sweep)
        assert serial.records == chunked.records

    def test_explicit_scenario_list_matches_sweep_dispatch(self):
        sweep = _tiny_sweep()
        scenarios = sweep.scenarios()
        with CampaignRunner(jobs=2) as runner:
            from_sweep = runner.run(sweep)
            from_list = runner.run(scenarios)
        assert from_sweep.records == from_list.records

    def test_keep_raw_travels_through_the_initializer(self):
        sweep = _tiny_sweep(seeds=(0,), macs=("qma", "unslotted-csma"))
        with CampaignRunner(jobs=2, keep_raw=True) as runner:
            records = runner.run(sweep).records
        assert all(record.raw is not None for record in records)


class TestScenarioTemplate:
    def test_template_of_sweep_round_trips_params(self):
        sweep = _tiny_sweep()
        template = ScenarioTemplate.of(sweep)
        scenario = sweep.scenarios()[0]
        rebuilt = Scenario(
            experiment=template.experiment,
            mac=scenario.mac,
            seed=scenario.seed,
            params={**dict(template.fixed), "delta": scenario.params["delta"]},
            propagation=scenario.propagation,
            metrics=template.metrics,
        )
        assert rebuilt == scenario
