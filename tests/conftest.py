"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.phy.channel import WirelessChannel
from repro.phy.params import PhyParameters
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with a fixed seed."""
    return Simulator(seed=42)


@pytest.fixture
def channel(sim: Simulator) -> WirelessChannel:
    """A wireless channel with default PHY parameters."""
    return WirelessChannel(sim, PhyParameters())


def make_line_network(sim: Simulator, channel: WirelessChannel, num_nodes: int = 3):
    """Create ``num_nodes`` radios on a line where only adjacent radios hear each other."""
    radios = [
        Radio(sim, channel, node_id=i, position=(float(i), 0.0)) for i in range(num_nodes)
    ]
    for i in range(num_nodes - 1):
        channel.connect(i, i + 1)
    return radios


@pytest.fixture
def line_radios(sim: Simulator, channel: WirelessChannel):
    """Three radios 0 - 1 - 2 where 0 and 2 are hidden from each other."""
    return make_line_network(sim, channel, 3)
