"""Unit tests for QMA's action set and reward functions (Table 4, Eq. 6-8)."""

from __future__ import annotations

import pytest

from repro.core.actions import ALL_ACTIONS, QAction
from repro.core.rewards import (
    DEFAULT_REWARDS,
    RewardFunction,
    format_reward_table,
    global_reward,
    local_reward,
    reward_table,
)

B, C, S = QAction.QBACKOFF, QAction.QCCA, QAction.QSEND


class TestActions:
    def test_short_names_round_trip(self):
        for action in ALL_ACTIONS:
            assert QAction.from_short_name(action.short_name) is action

    def test_unknown_short_name_rejected(self):
        with pytest.raises(ValueError):
            QAction.from_short_name("X")

    def test_action_order_is_stable(self):
        assert ALL_ACTIONS == (B, C, S)


class TestLocalRewards:
    def test_eq6_backoff(self):
        assert DEFAULT_REWARDS.backoff(overheard=True) == 2
        assert DEFAULT_REWARDS.backoff(overheard=False) == 0

    def test_eq7_cca(self):
        assert DEFAULT_REWARDS.cca(cca_success=True, tx_success=True) == 3
        assert DEFAULT_REWARDS.cca(cca_success=True, tx_success=False) == -2
        assert DEFAULT_REWARDS.cca(cca_success=False) == 1

    def test_eq8_send(self):
        assert DEFAULT_REWARDS.send(tx_success=True) == 4
        assert DEFAULT_REWARDS.send(tx_success=False) == -3


class TestTable4:
    """Every consistent row of Table 4 in the paper."""

    @pytest.mark.parametrize(
        "actions, locals_, total",
        [
            ((B, S, B), [2, 4, 2], 8),
            ((B, C, B), [2, 3, 2], 7),
            ((C, S, C), [1, 4, 1], 6),
            ((B, B, B), [0, 0, 0], 0),
            ((C, B, C), [-2, 0, -2], -4),
            ((S, B, S), [-3, 0, -3], -6),
            ((C, C, C), [-2, -2, -2], -6),
            ((S, C, S), [-3, 1, -3], -5),
            ((S, S, S), [-3, -3, -3], -9),
        ],
    )
    def test_row(self, actions, locals_, total):
        assert [local_reward(actions, i) for i in range(3)] == locals_
        assert global_reward(actions) == total

    def test_global_reward_orders_success_above_failure(self):
        successes = [(B, S, B), (B, C, B), (C, S, C)]
        failures = [(C, B, C), (S, B, S), (C, C, C), (S, C, S), (S, S, S)]
        min_success = min(global_reward(a) for a in successes)
        max_failure = max(global_reward(a) for a in failures)
        assert min_success > 0 > max_failure

    def test_reward_table_enumerates_all_combinations(self):
        table = reward_table(3)
        assert len(table) == 27
        table2 = reward_table(2)
        assert len(table2) == 9

    def test_agent_index_out_of_range(self):
        with pytest.raises(IndexError):
            local_reward((B, B), 5)

    def test_format_reward_table_mentions_all_rows(self):
        text = format_reward_table(2)
        assert "B S" in text and "S S" in text
        assert len(text.splitlines()) == 1 + 9

    def test_custom_reward_function_propagates(self):
        rewards = RewardFunction(send_tx_success=8.0)
        assert local_reward((B, S, B), 1, rewards) == 8.0
