"""Unit tests for exploration strategies, cautious startup and neighbour tracking."""

from __future__ import annotations

import pytest

from repro.core.config import DEFAULT_EXPLORATION_TABLE, QmaConfig
from repro.core.exploration import ConstantEpsilon, EpsilonGreedy, ParameterBasedExploration
from repro.core.neighbours import NeighbourQueueTracker
from repro.core.startup import CautiousStartup


class TestParameterBasedExploration:
    def test_matches_figure_4_values(self):
        strategy = ParameterBasedExploration()
        expectations = {
            0: 0.0,
            1: 0.0001,
            2: 0.001,
            3: 0.008,
            4: 0.02,
            5: 0.05,
            6: 0.1,
            7: 0.18,
            8: 0.3,
        }
        for difference, rho in expectations.items():
            assert strategy.probability(difference, 0.0, now=0.0) == pytest.approx(rho)

    def test_negative_difference_suppresses_exploration(self):
        """Neighbours with fuller queues get priority (Sect. 4.2)."""
        strategy = ParameterBasedExploration()
        assert strategy.probability(2, 5.0, now=0.0) == 0.0
        assert strategy.probability(0, 0.0, now=0.0) == 0.0

    def test_difference_clamped_to_table(self):
        strategy = ParameterBasedExploration()
        assert strategy.probability(50, 0.0, now=0.0) == DEFAULT_EXPLORATION_TABLE[-1]

    def test_rho_is_monotone_in_queue_difference(self):
        strategy = ParameterBasedExploration()
        values = [strategy.probability(d, 0.0, now=0.0) for d in range(9)]
        assert values == sorted(values)

    def test_invalid_table_rejected(self):
        with pytest.raises(ValueError):
            ParameterBasedExploration([])
        with pytest.raises(ValueError):
            ParameterBasedExploration([0.5, 1.5])


class TestEpsilonGreedy:
    def test_decays_with_every_action(self):
        strategy = EpsilonGreedy(epsilon_start=0.3, decay=0.5, epsilon_min=0.01)
        assert strategy.probability(0, 0, 0.0) == 0.3
        strategy.notify_action(0.0)
        assert strategy.probability(0, 0, 0.0) == 0.15
        for _ in range(100):
            strategy.notify_action(0.0)
        assert strategy.probability(0, 0, 0.0) == pytest.approx(0.01)

    def test_ignores_queue_levels(self):
        strategy = EpsilonGreedy(epsilon_start=0.2, decay=1.0)
        assert strategy.probability(8, 0, 0.0) == strategy.probability(0, 8, 0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EpsilonGreedy(epsilon_start=2.0)
        with pytest.raises(ValueError):
            EpsilonGreedy(decay=0.0)
        with pytest.raises(ValueError):
            EpsilonGreedy(epsilon_start=0.1, epsilon_min=0.2)


class TestConstantEpsilon:
    def test_constant(self):
        strategy = ConstantEpsilon(0.07)
        for _ in range(5):
            assert strategy.probability(3, 1, 0.0) == 0.07
            strategy.notify_action(0.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantEpsilon(-0.1)


class TestCautiousStartup:
    def test_phase_ends_after_duration(self):
        startup = CautiousStartup(3)
        assert startup.active
        assert not startup.tick()
        assert not startup.tick()
        assert startup.tick()      # third tick finishes the phase
        assert not startup.active
        assert startup.remaining_subslots == 0

    def test_zero_duration_is_immediately_finished(self):
        startup = CautiousStartup(0)
        assert not startup.active
        assert not startup.tick()

    def test_restart(self):
        startup = CautiousStartup(2)
        startup.tick()
        startup.tick()
        assert not startup.active
        startup.restart()
        assert startup.active
        assert startup.elapsed_subslots == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            CautiousStartup(-1)


class TestNeighbourQueueTracker:
    def test_average_over_known_neighbours(self):
        tracker = NeighbourQueueTracker(max_age=None)
        tracker.observe(1, 4, now=0.0)
        tracker.observe(2, 0, now=0.0)
        assert tracker.average_level(now=1.0) == 2.0
        assert len(tracker) == 2

    def test_no_neighbours_means_zero(self):
        tracker = NeighbourQueueTracker()
        assert tracker.average_level(now=0.0) == 0.0

    def test_latest_observation_wins(self):
        tracker = NeighbourQueueTracker(max_age=None)
        tracker.observe(1, 8, now=0.0)
        tracker.observe(1, 2, now=1.0)
        assert tracker.average_level(now=1.0) == 2.0

    def test_entries_expire(self):
        tracker = NeighbourQueueTracker(max_age=5.0)
        tracker.observe(1, 8, now=0.0)
        assert tracker.average_level(now=10.0) == 0.0
        assert tracker.known_neighbours(now=10.0) == {}

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            NeighbourQueueTracker(max_age=0.0)
        tracker = NeighbourQueueTracker()
        with pytest.raises(ValueError):
            tracker.observe(1, -1, now=0.0)


class TestQmaConfig:
    def test_defaults_follow_the_paper(self):
        config = QmaConfig()
        assert config.learning_rate == 0.5
        assert config.discount_factor == 0.9
        assert config.num_subslots == 54
        assert config.queue_capacity == 8
        assert config.exploration_table == DEFAULT_EXPLORATION_TABLE

    def test_frame_duration(self):
        config = QmaConfig(num_subslots=10, subslot_duration=0.001)
        assert config.frame_duration == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            QmaConfig(learning_rate=0.0)
        with pytest.raises(ValueError):
            QmaConfig(discount_factor=-0.1)
        with pytest.raises(ValueError):
            QmaConfig(num_subslots=0)
        with pytest.raises(ValueError):
            QmaConfig(exploration_table=(0.5, 2.0))
