"""Behaviour tests of the QMA MAC protocol."""

from __future__ import annotations


from repro.core.actions import QAction
from repro.core.config import QmaConfig
from repro.core.exploration import ConstantEpsilon
from repro.core.mac import QmaMac
from repro.mac.gate import WindowedGate
from repro.phy.channel import WirelessChannel
from repro.phy.frames import BROADCAST, Frame, FrameKind
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


def small_config(**overrides):
    """A QMA configuration with few subslots for fast unit tests."""
    defaults = dict(
        num_subslots=8,
        subslot_duration=2e-3,
        cautious_startup_subslots=0,
        track_history=True,
    )
    defaults.update(overrides)
    return QmaConfig(**defaults)


def build_pair(seed=1, config=None, config_b=None):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    mac_a = QmaMac(sim, radio_a, config=config or small_config())
    mac_b = QmaMac(sim, radio_b, config=config_b or config or small_config())
    mac_a.start()
    mac_b.start()
    return sim, mac_a, mac_b


def test_single_sender_delivers_and_learns_positive_q_values():
    sim, mac_a, mac_b = build_pair()
    received = []
    mac_b.receive_callback = received.append
    for k in range(20):
        sim.schedule(
            0.05 * k, mac_a.send, Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20)
        )
    sim.run_until(3.0)
    assert len(received) == 20
    assert mac_a.stats.tx_success == 20
    # At least one subslot's policy must have switched to a transmitting action.
    assert mac_a.transmission_subslots()
    best = max(
        mac_a.qtable.value(m, a)
        for m in range(mac_a.config.num_subslots)
        for a in (QAction.QCCA, QAction.QSEND)
    )
    assert best > mac_a.config.q_init


def test_no_action_selected_while_queue_empty():
    sim, mac_a, _ = build_pair()
    sim.run_until(0.5)
    assert mac_a.action_stats.total == 0
    assert mac_a.stats.tx_attempts == 0


def test_policy_initialised_to_backoff_everywhere():
    sim, mac_a, _ = build_pair()
    assert all(action is QAction.QBACKOFF for action in mac_a.policy_snapshot())


def test_backoff_reward_given_when_overhearing():
    """A silent node overhearing traffic accumulates positive QBackoff values."""
    sim = Simulator(seed=3)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    radio_x = Radio(sim, channel, 2)
    for pair in ((0, 1), (0, 2), (1, 2)):
        channel.connect(*pair)
    config = small_config()
    mac_a = QmaMac(sim, radio_a, config=config)
    mac_b = QmaMac(sim, radio_b, config=config)
    listener = QmaMac(sim, radio_x, config=config)
    for mac in (mac_a, mac_b, listener):
        mac.start()
    # The listener has one packet queued but its policy (QBackoff) keeps it
    # silent almost always, so it mostly observes the others' traffic.
    for _ in range(30):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    listener.send(Frame(FrameKind.DATA, src=2, dst=1, payload_bytes=20))
    sim.run_until(2.0)
    backoff_values = [
        listener.qtable.value(m, QAction.QBACKOFF)
        for m in range(config.num_subslots)
    ]
    assert max(backoff_values) > config.q_init


def test_transmission_failure_applies_penalty_not_full_punishment():
    """Without a receiver every transmission fails; the queue keeps the frame
    until max_frame_retries is exceeded and Q-values decrease by xi per update."""
    sim = Simulator(seed=2)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    Radio(sim, channel, 1)  # isolated receiver: no link
    config = small_config(max_frame_retries=2)
    mac_a = QmaMac(sim, radio_a, config=config, exploration=ConstantEpsilon(1.0))
    mac_a.start()
    outcomes = []
    mac_a.sent_callback = lambda frame, ok: outcomes.append(ok)
    mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    sim.run_until(2.0)
    assert outcomes == [False]
    assert mac_a.stats.dropped_retries == 1
    # Every failed transmission decreased the respective Q-value by exactly xi.
    min_value = min(
        mac_a.qtable.value(m, a)
        for m in range(config.num_subslots)
        for a in (QAction.QCCA, QAction.QSEND)
    )
    assert min_value >= config.q_init - 3 * config.penalty - 1e-9
    assert min_value < config.q_init


def test_cautious_startup_only_observes():
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    # Aggressive exploration so that, once the startup phase has ended, the
    # queued frame is transmitted quickly (the default parameter-based
    # exploration would wait much longer for a single queued packet).
    mac_a = QmaMac(
        sim, radio_a, config=small_config(cautious_startup_subslots=16),
        exploration=ConstantEpsilon(1.0),
    )
    mac_b = QmaMac(sim, radio_b, config=small_config())
    mac_a.start()
    mac_b.start()
    mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    # Run for fewer subslots than the startup duration.
    sim.run_until(8 * 2e-3)
    assert mac_a.stats.tx_attempts == 0
    assert mac_a.startup.active
    sim.run_until(0.5)
    # After the startup phase the queued frame is eventually transmitted.
    assert not mac_a.startup.active
    assert mac_a.stats.tx_attempts >= 1


def test_cautious_startup_punishes_used_subslots():
    """Subslots observed busy during startup get negative QCCA/QSend values."""
    sim = Simulator(seed=4)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    radio_newcomer = Radio(sim, channel, 2)
    for pair in ((0, 1), (0, 2), (1, 2)):
        channel.connect(*pair)
    config = small_config()
    mac_a = QmaMac(sim, radio_a, config=config)
    mac_b = QmaMac(sim, radio_b, config=config)
    newcomer = QmaMac(sim, radio_newcomer, config=small_config(cautious_startup_subslots=200))
    for mac in (mac_a, mac_b, newcomer):
        mac.start()
    for _ in range(40):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    sim.run_until(1.0)
    punished = [
        m
        for m in range(config.num_subslots)
        if newcomer.qtable.value(m, QAction.QSEND) < config.q_init
    ]
    rewarded = [
        m
        for m in range(config.num_subslots)
        if newcomer.qtable.value(m, QAction.QBACKOFF) > config.q_init
    ]
    assert punished, "busy subslots should be punished for QSend during startup"
    assert rewarded, "overhearing should reward QBackoff during startup"


def test_q_history_recorded_per_frame():
    sim, mac_a, mac_b = build_pair()
    mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    sim.run_until(0.5)
    # One history entry per elapsed frame (8 subslots of 2 ms each = 16 ms).
    assert len(mac_a.q_history) == mac_a.frames_elapsed
    times = [t for t, _ in mac_a.q_history]
    assert times == sorted(times)


def test_rho_history_tracks_exploration_probability():
    sim, mac_a, mac_b = build_pair()
    for _ in range(10):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    sim.run_until(0.5)
    assert mac_a.rho_history
    assert all(0.0 <= rho <= 1.0 for _, rho in mac_a.rho_history)


def test_broadcasts_are_transmitted_without_ack():
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    mac_a = QmaMac(sim, radio_a, config=small_config(), exploration=ConstantEpsilon(1.0))
    mac_b = QmaMac(sim, radio_b, config=small_config())
    mac_a.start()
    mac_b.start()
    received = []
    mac_b.receive_callback = received.append
    mac_a.send(Frame(FrameKind.ROUTE_DISCOVERY, src=0, dst=BROADCAST))
    sim.run_until(0.5)
    assert len(received) == 1
    assert mac_a.stats.broadcasts_sent == 1
    assert mac_b.stats.acks_sent == 0


def test_windowed_gate_restricts_transmissions_to_cap():
    sim = Simulator(seed=6)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    gate = WindowedGate(period=0.1, window=0.05)
    config = small_config(num_subslots=10, subslot_duration=0.005)
    mac_a = QmaMac(sim, radio_a, config=config, gate=gate)
    mac_b = QmaMac(sim, radio_b, config=config, gate=gate)
    mac_a.start()
    mac_b.start()
    tx_starts = []
    original = mac_a._begin_transmission

    def spy(frame):
        tx_starts.append(sim.now)
        return original(frame)

    mac_a._begin_transmission = spy
    for _ in range(20):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    sim.run_until(2.0)
    assert tx_starts, "some transmissions must have happened"
    for t in tx_starts:
        assert gate.active(t), f"transmission at {t} outside the CAP window"


def test_neighbour_queue_levels_learned_from_piggyback():
    sim, mac_a, mac_b = build_pair()
    for _ in range(5):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=20))
    sim.run_until(1.0)
    # B received A's data frames and therefore knows A's queue level.
    assert 0 in mac_b.neighbours.known_neighbours(sim.now)
