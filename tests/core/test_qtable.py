"""Unit tests for the Q-table: Eq. 5 (value update) and Eq. 3 (policy update)."""

from __future__ import annotations

import pytest

from repro.core.actions import QAction
from repro.core.qtable import QTable

B, C, S = QAction.QBACKOFF, QAction.QCCA, QAction.QSEND


def make_table(**kwargs):
    defaults = dict(num_states=4, learning_rate=1.0, discount_factor=1.0, penalty=2.0, q_init=-10.0)
    defaults.update(kwargs)
    return QTable(**defaults)


class TestInitialisation:
    def test_initial_values_and_policy(self):
        table = make_table()
        for state in range(4):
            assert table.policy(state) is B
            for action in (B, C, S):
                assert table.value(state, action) == -10.0
        assert table.cumulative_policy_value() == -40.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QTable(num_states=0)
        with pytest.raises(ValueError):
            QTable(num_states=4, learning_rate=0.0)
        with pytest.raises(ValueError):
            QTable(num_states=4, discount_factor=1.5)
        with pytest.raises(ValueError):
            QTable(num_states=4, penalty=-1.0)


class TestEq5Update:
    def test_positive_reward_raises_value(self):
        table = make_table()
        result = table.update(0, S, reward=4.0, next_state=1)
        # alpha=1, gamma=1: candidate = 4 + max_a Q(1, a) = 4 - 10 = -6.
        assert result.new_value == -6.0
        assert table.value(0, S) == -6.0

    def test_penalty_limits_decrease(self):
        """A large punishment only decreases the stored value by xi (Eq. 5)."""
        table = make_table()
        table.update(2, S, reward=-3.0, next_state=3)
        # candidate = -3 - 10 = -13 but the value only drops by xi = 2.
        assert table.value(2, S) == -12.0

    def test_stable_optimum_is_restored_after_penalty(self):
        """The penalty only affects fluctuating Q-values (Sect. 3.1.1)."""
        table = make_table(learning_rate=0.5, discount_factor=0.0)
        for _ in range(10):
            table.update(0, S, reward=4.0, next_state=1)
        stable = table.value(0, S)
        table.update(0, S, reward=-3.0, next_state=1)   # one bad experience
        assert table.value(0, S) == pytest.approx(stable - 2.0)
        for _ in range(10):
            table.update(0, S, reward=4.0, next_state=1)
        assert table.value(0, S) == pytest.approx(stable, abs=0.1)

    def test_learning_rate_halves_increment(self):
        table = make_table(learning_rate=0.5, discount_factor=0.9)
        table.update(0, C, reward=3.0, next_state=1)
        expected = 0.5 * -10.0 + 0.5 * (3.0 + 0.9 * -10.0)
        assert table.value(0, C) == pytest.approx(expected)

    def test_invalid_states_rejected(self):
        table = make_table()
        with pytest.raises(IndexError):
            table.update(7, B, 0.0, 0)
        with pytest.raises(IndexError):
            table.update(0, B, 0.0, 9)


class TestEq3Policy:
    def test_policy_switches_only_on_strictly_greater_value(self):
        table = make_table()
        table.update(0, B, reward=0.0, next_state=1)      # Q(0,B) = -10
        table.update(0, S, reward=4.0, next_state=1)      # Q(0,S) = -6 > Q(0,B)
        assert table.policy(0) is S

    def test_policy_keeps_first_optimum_on_ties(self):
        table = make_table()
        table.set_value(0, B, 5.0)
        table.set_policy(0, B)
        # An update that reaches exactly the same value must not switch.
        table.set_value(0, C, 5.0)
        result = table.update(0, C, reward=5.0, next_state=1)
        assert table.policy(0) is B
        assert not result.policy_changed

    def test_failed_transmission_does_not_change_policy(self):
        """Reproduces the frame-1/subslot-3 situation of the paper's example."""
        table = make_table()
        table.update(2, S, reward=-3.0, next_state=3)
        assert table.policy(2) is B

    def test_updates_counter(self):
        table = make_table()
        table.update(0, B, 0.0, 1)
        table.update(1, C, 1.0, 2)
        assert table.updates == 2


class TestMetrics:
    def test_transmission_subslots_and_counts(self):
        table = make_table()
        table.set_policy(1, S)
        table.set_policy(3, C)
        assert table.transmission_subslots() == [1, 3]
        counts = table.policy_counts()
        assert counts[S] == 1 and counts[C] == 1 and counts[B] == 2

    def test_cumulative_values(self):
        table = make_table()
        table.set_value(0, B, 1.0)
        table.set_value(1, S, 7.0)
        table.set_policy(1, S)
        assert table.cumulative_policy_value() == 1.0 + 7.0 - 10.0 - 10.0
        assert table.cumulative_max_value() >= table.cumulative_policy_value()

    def test_memory_footprint_is_small(self):
        """The paper targets embedded devices: 54 subslots x 3 actions."""
        table = QTable(num_states=54)
        assert table.memory_footprint_bytes(bytes_per_entry=4) <= 1024

    def test_reset(self):
        table = make_table()
        table.update(0, S, 4.0, 1)
        table.set_policy(2, C)
        table.reset()
        assert table.value(0, S) == -10.0
        assert table.policy(2) is B
        assert table.updates == 0

    def test_as_rows_format(self):
        table = make_table()
        rows = table.as_rows()
        assert len(rows) == 4
        assert rows[0][4] == "B"
