"""Reproduction of the worked example of Sect. 5 (Fig. 5 of the paper).

Three nodes, four subslots, α = 1, γ = 1, ξ = 2, Q-values initialised to
-10 and the policy initialised to QBackoff.  The test replays the scripted
action/reward sequence of frame 1 and checks the Q-values the paper states.
"""

from __future__ import annotations


from repro.core.actions import QAction
from repro.core.qtable import QTable

B, C, S = QAction.QBACKOFF, QAction.QCCA, QAction.QSEND


def paper_table() -> QTable:
    return QTable(num_states=4, learning_rate=1.0, discount_factor=1.0, penalty=2.0, q_init=-10.0)


class TestFrame1Node1:
    """Node n1 of the example: QSend (success) in subslot 0, QSend (collision) in subslot 2."""

    def test_subslot0_success_gives_minus_6(self):
        table = paper_table()
        # Reward 4 (Eq. 8), next state's maximum is still -10.
        table.update(0, S, reward=4.0, next_state=1)
        assert table.value(0, S) == -6.0
        assert table.policy(0) is S  # -6 > Q(0, QBackoff) = -10

    def test_subslot2_collision_applies_penalty_only(self):
        table = paper_table()
        table.update(0, S, reward=4.0, next_state=1)
        # Collision in subslot 2: candidate -3 - 10 = -13, but Q drops only by xi = 2.
        table.update(2, S, reward=-3.0, next_state=3)
        assert table.value(2, S) == -12.0
        # Policy for subslot 2 stays QBackoff, as the paper notes.
        assert table.policy(2) is B

    def test_subslot3_backoff_uses_updated_next_state(self):
        """Q(3, B) = 2 + max_a Q(0, a) = 2 - 6 = -4 after n1's subslot-0 success."""
        table = paper_table()
        table.update(0, S, reward=4.0, next_state=1)
        table.update(3, B, reward=2.0, next_state=0)
        assert table.value(3, B) == -4.0


class TestFrame1Node2:
    """Node n2: random QCCA in subslot 0 (CCA fails: reward 1), QSend collision in subslot 2."""

    def test_failed_cca_gives_minus_9(self):
        table = paper_table()
        table.update(0, C, reward=1.0, next_state=1)
        assert table.value(0, C) == -9.0

    def test_qsend_success_in_subslot_3(self):
        table = paper_table()
        table.update(0, C, reward=1.0, next_state=1)
        # Collision in subslot 2 first (penalty), then a successful QSend in subslot 3.
        table.update(2, S, reward=-3.0, next_state=3)
        table.update(3, S, reward=4.0, next_state=0)
        # Q(3, S) = 4 + max_a Q(0, a) = 4 - 9 = -5 as shown in the paper.
        assert table.value(3, S) == -5.0
        assert table.policy(3) is S


class TestFrame1Node3:
    """Node n3 is in cautious startup: it only backs off and observes."""

    def test_overhearing_rewards_backoff(self):
        table = paper_table()
        # Overhears n1's successful transmission in subslot 0: reward 2.
        table.update(0, B, reward=2.0, next_state=1)
        assert table.value(0, B) == -8.0
        # Nothing overheard in subslots 1 and 2 (collision): reward 0.
        table.update(1, B, reward=0.0, next_state=2)
        table.update(2, B, reward=0.0, next_state=3)
        assert table.value(1, B) == -10.0
        assert table.value(2, B) == -10.0
        # Overhears n2's transmission in subslot 3: Q(3, B) = 2 + Q(0, B) = -6.
        table.update(3, B, reward=2.0, next_state=0)
        assert table.value(3, B) == -6.0


def test_three_agents_settle_on_distinct_transmission_subslots():
    """After the example's three frames every node owns one transmission subslot."""
    tables = {name: paper_table() for name in ("n1", "n2", "n3")}
    # Frame 1 (as above).
    tables["n1"].update(0, S, 4.0, 1)
    tables["n2"].update(0, C, 1.0, 1)
    tables["n1"].update(2, S, -3.0, 3)
    tables["n2"].update(2, S, -3.0, 3)
    tables["n2"].update(3, S, 4.0, 0)
    tables["n3"].update(0, B, 2.0, 1)
    tables["n3"].update(3, B, 2.0, 0)
    # Frame 2: n3 randomly selects QCCA in subslot 1 and succeeds (reward 3).
    tables["n3"].update(1, C, 3.0, 2)
    assert tables["n3"].policy(1) is C

    # Every node ends up transmitting (QSend or QCCA) in its own subslot.
    assert tables["n1"].policy(0) is S
    assert tables["n2"].policy(3) is S
    assert tables["n3"].policy(1) is C
    # The QSend subslots of the three nodes are pairwise distinct, i.e. the
    # example converges to a collision-free transmission schedule.
    send_slots = {
        name: {m for m in range(4) if table.policy(m) is S}
        for name, table in tables.items()
    }
    claimed = [slot for slots in send_slots.values() for slot in slots]
    assert len(claimed) == len(set(claimed))
