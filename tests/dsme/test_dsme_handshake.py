"""Integration tests of the DSME 3-way GTS handshake and CFP data transfer."""

from __future__ import annotations

import pytest

from repro.dsme.network import DsmeNetwork
from repro.dsme.superframe import SuperframeConfig
from repro.sim.engine import Simulator
from repro.topology.hidden_node import hidden_node_topology
from repro.topology.concentric import concentric_node_count


def build_small_dsme(mac="unslotted-csma", seed=1, route_discovery_period=None):
    """A three-node DSME network (hidden-node topology) with a CSMA CAP."""
    sim = Simulator(seed=seed)
    topology = hidden_node_topology()
    dsme = DsmeNetwork(
        sim,
        topology,
        cap_mac=mac,
        config=SuperframeConfig(),
        route_discovery_period=route_discovery_period,
    )
    return sim, dsme


class TestHandshake:
    def test_allocation_handshake_completes(self):
        sim, dsme = build_small_dsme()
        dsme.start()
        node_a = dsme.dsme_node(0)          # child of the sink
        sink = dsme.dsme_node(1)
        # Generate enough data to exceed the (zero) allocated capacity.
        sim.schedule(1.0, node_a.generate_data)
        sim.schedule(1.0, node_a.generate_data)
        sim.run_until(10.0)
        assert node_a.stats.handshakes_started >= 1
        assert node_a.stats.handshakes_completed >= 1
        # A TX slot was allocated at the requester and the RX side was
        # committed at the sink (it may have been deallocated again by the
        # time the run ends, once the queue drained).
        assert node_a.stats.allocations >= 1
        assert sink.stats.allocations >= 1
        stats = dsme.secondary_traffic_stats()
        assert stats.requests_sent >= 1
        assert stats.requests_delivered >= 1
        assert stats.responses_received >= 1
        assert stats.notifies_received >= 1
        assert stats.pdr > 0.5

    def test_data_is_delivered_over_allocated_gts(self):
        sim, dsme = build_small_dsme()
        dsme.start()
        node_a = dsme.dsme_node(0)
        for k in range(5):
            sim.schedule(1.0 + 0.1 * k, node_a.generate_data)
        sim.run_until(20.0)
        assert dsme.network.sink.deliveries, "data packets must reach the sink over GTS"
        assert dsme.primary_traffic_pdr() > 0.5
        assert node_a.stats.data_sent_in_gts >= 1

    def test_idle_node_deallocates_after_a_while(self):
        sim, dsme = build_small_dsme()
        dsme.start()
        node_a = dsme.dsme_node(0)
        sim.schedule(1.0, node_a.generate_data)
        sim.schedule(1.0, node_a.generate_data)
        sim.run_until(30.0)
        # The queue drained long ago and the idle threshold passed.
        assert node_a.stats.deallocations >= 1
        assert node_a.allocated_tx_capacity == 0

    def test_data_queue_overflow_is_counted(self):
        sim, dsme = build_small_dsme()
        node_a = dsme.dsme_node(0)
        # Do not start the network: no GTS can be allocated and nothing drains.
        for _ in range(node_a.data_queue_capacity + 3):
            node_a.generate_data()
        assert node_a.stats.data_dropped_queue_full == 3

    def test_sink_does_not_generate_data(self):
        sim, dsme = build_small_dsme()
        sink = dsme.dsme_node(1)
        sink.generate_data()
        assert sink.node.packets_generated == 0


class TestDsmeNetwork:
    def test_invalid_cap_mac_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            DsmeNetwork(sim, hidden_node_topology(), cap_mac="not-a-mac")

    def test_any_registered_mac_is_a_valid_cap_mac(self):
        # Since the registry refactor the CAP accepts e.g. tdma too.
        sim = Simulator()
        dsme = DsmeNetwork(sim, hidden_node_topology(), cap_mac="tdma")
        assert all(mac.name == "tdma" for mac in dsme.network.macs.values())

    def test_concentric_node_counts_match_paper(self):
        assert [concentric_node_count(r) for r in (1, 2, 3, 4)] == [7, 19, 43, 91]

    def test_secondary_stats_aggregate_over_nodes(self):
        sim, dsme = build_small_dsme(route_discovery_period=2.0)
        dsme.start()
        node_a = dsme.dsme_node(0)
        node_c = dsme.dsme_node(2)
        sim.schedule(1.0, node_a.generate_data)
        sim.schedule(1.0, node_a.generate_data)
        sim.schedule(1.5, node_c.generate_data)
        sim.schedule(1.5, node_c.generate_data)
        sim.run_until(15.0)
        stats = dsme.secondary_traffic_stats()
        per_node = [dsme.dsme_node(i).stats.requests_sent for i in (0, 1, 2)]
        assert stats.requests_sent == sum(per_node)
        assert 0.0 <= stats.pdr <= 1.0
        assert 0.0 <= stats.gts_request_success_ratio <= 1.0

    def test_qma_cap_mac_can_carry_the_handshake(self):
        sim, dsme = build_small_dsme(mac="qma")
        dsme.start()
        node_a = dsme.dsme_node(0)
        # A burst of data builds queue pressure so QMA explores quickly.
        for k in range(8):
            sim.schedule(1.0 + 0.05 * k, node_a.generate_data)
        sim.run_until(60.0)
        assert node_a.stats.handshakes_completed >= 1
        assert dsme.network.sink.deliveries
