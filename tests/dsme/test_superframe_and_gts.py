"""Unit tests for the DSME superframe timing and the GTS allocation table."""

from __future__ import annotations

import pytest

from repro.dsme.gts import GtsAllocationTable, GtsDirection, GtsSlot, iter_all_slots
from repro.dsme.superframe import SuperframeConfig


class TestSuperframeConfig:
    def test_standard_timing(self):
        config = SuperframeConfig(superframe_order=3)
        # 960 * 2^3 symbols of 16 us = 122.88 ms.
        assert config.superframe_duration == pytest.approx(0.12288)
        assert config.slot_duration == pytest.approx(0.12288 / 16)
        assert config.cap_duration == pytest.approx(8 * 0.12288 / 16)
        assert config.cfp_duration == pytest.approx(7 * 0.12288 / 16)
        assert config.beacon_duration == pytest.approx(0.12288 / 16)

    def test_subslot_duration_divides_cap_into_54(self):
        config = SuperframeConfig()
        assert config.subslot_duration * config.cap_subslots == pytest.approx(
            config.cap_duration
        )

    def test_gts_counts(self):
        config = SuperframeConfig(num_channels=4, superframes_per_multisuperframe=2)
        assert config.gts_per_superframe == 7 * 4
        assert config.gts_per_multisuperframe == 7 * 4 * 2

    def test_cap_gate_window(self):
        config = SuperframeConfig()
        gate = config.cap_gate()
        # Start of the CAP of the first superframe (just after the beacon).
        assert gate.active(config.cap_offset + 1e-6)
        # Inside the CFP.
        assert not gate.active(config.cap_offset + config.cap_duration + 1e-3)
        # Second superframe's CAP.
        assert gate.active(config.superframe_duration + config.cap_offset + 1e-6)

    def test_cfp_start(self):
        config = SuperframeConfig()
        assert config.cfp_start(0) == pytest.approx(config.beacon_duration + config.cap_duration)
        assert config.cfp_start(2) == pytest.approx(
            2 * config.superframe_duration + config.beacon_duration + config.cap_duration
        )

    def test_invalid_structure_rejected(self):
        with pytest.raises(ValueError):
            SuperframeConfig(cap_slots=9)  # beacon + cap + cfp != 16
        with pytest.raises(ValueError):
            SuperframeConfig(cap_subslots=0)


class TestGtsAllocationTable:
    def make(self):
        return GtsAllocationTable(SuperframeConfig(num_channels=2, superframes_per_multisuperframe=1))

    def test_allocate_and_query(self):
        table = self.make()
        slot = GtsSlot(0, 0, 0)
        table.allocate(slot, GtsDirection.TX, peer=5)
        assert table.is_allocated(slot)
        assert table.tx_slots(5) == [slot]
        assert table.rx_slots() == []
        assert table.num_allocated == 1
        with pytest.raises(ValueError):
            table.allocate(slot, GtsDirection.RX, peer=6)

    def test_find_free_slot_skips_allocated_and_busy(self):
        table = self.make()
        first = table.find_free_slot()
        table.allocate(first, GtsDirection.TX, peer=1)
        second = table.find_free_slot()
        assert second != first
        table.mark_neighbourhood_busy(second)
        third = table.find_free_slot()
        assert third not in (first, second)

    def test_all_slots_exhaustible(self):
        config = SuperframeConfig(num_channels=1, superframes_per_multisuperframe=1)
        table = GtsAllocationTable(config)
        slots = list(iter_all_slots(config))
        assert len(slots) == config.cfp_slots
        for slot in slots:
            table.allocate(slot, GtsDirection.TX, peer=0)
        assert table.find_free_slot() is None

    def test_deallocate(self):
        table = self.make()
        slot = GtsSlot(0, 1, 0)
        table.allocate(slot, GtsDirection.RX, peer=2)
        assert table.deallocate(slot) is not None
        assert not table.is_allocated(slot)
        assert table.deallocate(slot) is None

    def test_neighbourhood_marks_can_be_cleared(self):
        table = self.make()
        slot = GtsSlot(0, 3, 1)
        table.mark_neighbourhood_busy(slot)
        assert not table.is_usable(slot)
        table.mark_neighbourhood_free(slot)
        assert table.is_usable(slot)
