"""Integration tests of the experiment runners (reduced workloads).

These tests exercise the same code paths as the paper-scale experiments but
with small packet counts so that the whole suite stays fast.  The headline
comparison (QMA beats CSMA/CA under hidden-terminal load) is asserted here
on a reduced workload; the benchmarks reproduce the full figures.
"""

from __future__ import annotations

import pytest

from repro.core.actions import QAction
from repro.experiments.base import MAC_KINDS, make_mac_factory, repeat_scalar, summarize
from repro.experiments.handshake import handshake_expected_messages
from repro.experiments.hidden_node import (
    run_convergence,
    run_fluctuating,
    run_hidden_node,
    run_slot_utilisation,
    sweep_hidden_node,
)
from repro.experiments.scalability import run_scalability
from repro.experiments.testbed import run_star, run_tree


class TestHiddenNodeRunner:
    def test_qma_outperforms_csma_at_high_load(self):
        """Reduced-workload version of the paper's headline result (Fig. 7)."""
        qma = run_hidden_node(mac="qma", delta=25, packets_per_node=150, warmup=20, seed=3)
        csma = run_hidden_node(
            mac="unslotted-csma", delta=25, packets_per_node=150, warmup=20, seed=3
        )
        assert qma.pdr > csma.pdr
        assert qma.pdr > 0.9

    def test_result_contains_qma_histories(self):
        result = run_hidden_node(mac="qma", delta=10, packets_per_node=30, warmup=10, seed=1)
        assert result.q_histories and result.rho_histories and result.policies
        for policy in result.policies.values():
            assert len(policy) == 54
            assert all(isinstance(action, QAction) for action in policy)

    def test_csma_result_has_no_qma_histories(self):
        result = run_hidden_node(
            mac="slotted-csma", delta=10, packets_per_node=20, warmup=5, seed=1
        )
        assert result.q_histories == {}

    def test_pdr_bounds_and_counters(self):
        result = run_hidden_node(mac="qma", delta=4, packets_per_node=20, warmup=5, seed=2)
        assert 0.0 <= result.pdr <= 1.0
        assert result.packets_generated == 40
        assert result.packets_delivered <= result.packets_generated + 10  # + management
        assert result.average_queue_level >= 0.0

    def test_sweep_structure(self):
        results = sweep_hidden_node(
            macs=("qma",), deltas=(10,), packets_per_node=20, repetitions=2, warmup=5
        )
        assert set(results) == {"qma"}
        assert len(results["qma"][10]) == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_hidden_node(delta=0)
        with pytest.raises(ValueError):
            run_hidden_node(packets_per_node=0)


class TestSinrHiddenNodeRunner:
    def test_asymmetric_delivery_regime(self):
        """The hidden node overhears the network (sensed/received frames)
        but its own uplink never clears the 10 dB SINR threshold."""
        from repro.experiments.sinr_hidden_node import run_sinr_hidden_node

        report = run_sinr_hidden_node(
            mac="unslotted-csma", delta=10.0, packets_per_node=30, warmup=5.0, seed=0
        )
        assert report.experiment == "sinr-hidden-node"
        scalars = report.scalars
        assert scalars["hidden_delivered"] == 0.0
        assert scalars["hidden_pdr"] == 0.0
        assert scalars["hidden_frames_received"] > 0  # downlink still decodes
        assert scalars["near_pdr"] > 0.8
        assert scalars["delivery_asymmetry"] == pytest.approx(
            scalars["near_pdr"] - scalars["hidden_pdr"]
        )

    def test_sensed_only_band_drives_cca(self):
        """NEAR sits in HIDDEN's carrier-sense band (115 m < 250 m) but out
        of communication range, so the hidden node's CCA reacts to frames
        it can never decode."""
        from repro.experiments.sinr_hidden_node import run_sinr_hidden_node

        report = run_sinr_hidden_node(
            mac="unslotted-csma", delta=25.0, packets_per_node=50, warmup=5.0, seed=1
        )
        assert report.scalars["hidden_cca_sensed_only"] > 0

    def test_rejects_invalid_arguments(self):
        from repro.experiments.sinr_hidden_node import run_sinr_hidden_node

        with pytest.raises(ValueError):
            run_sinr_hidden_node(delta=0)
        with pytest.raises(ValueError):
            run_sinr_hidden_node(packets_per_node=0)


class TestConvergenceAndSlots:
    def test_convergence_histories_cover_the_run(self):
        result = run_convergence(delta=25, duration=40.0, warmup=10.0, seed=1)
        history = result.q_histories[0]
        assert history[0][0] < 2.0
        assert history[-1][0] > 35.0
        values = [v for _, v in history]
        # Learning must move the cumulative Q-value away from its initial level.
        assert max(values) > min(values)

    def test_fluctuating_returns_history_per_node(self):
        histories = run_fluctuating(duration=30.0, phase_duration=10.0, node_c_join_time=5.0)
        assert set(histories) == {0, 2}
        assert all(len(history) > 10 for history in histories.values())

    def test_slot_utilisation_becomes_collision_free(self):
        snapshot, final = run_slot_utilisation(
            delta=25, snapshot_time=15.0, duration=60.0, warmup=5.0, seed=2
        )
        assert final.num_subslots == 54
        assert final.utilised_subslots() >= 1
        assert final.collision_free


class TestTestbedRunners:
    def test_tree_reports_per_node_pdr(self):
        result = run_tree(mac="qma", delta=5, packets_per_node=30, warmup=20, seed=1)
        assert result.packets_generated > 0
        assert 0.0 <= result.overall_pdr <= 1.0
        assert all(0.0 <= pdr <= 1.0 for pdr in result.per_node_pdr.values())
        assert result.transmission_attempts > 0

    def test_star_runs_for_both_macs(self):
        for mac in ("qma", "unslotted-csma"):
            result = run_star(mac=mac, delta=2, packets_per_node=10, warmup=15, seed=1)
            assert result.topology == "iotlab-star"
            assert result.packets_generated > 0


class TestScalabilityRunner:
    def test_dsme_secondary_traffic_metrics(self):
        result = run_scalability(
            mac="unslotted-csma", rings=1, duration=60.0, warmup=20.0, seed=1
        )
        assert result.num_nodes == 7
        assert result.secondary.messages_sent > 0
        assert 0.0 <= result.secondary_pdr <= 1.0
        assert 0.0 <= result.gts_request_success <= 1.0
        assert result.allocation_rate >= 0.0
        assert result.primary_pdr > 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_scalability(rings=0)
        with pytest.raises(ValueError):
            run_scalability(duration=10.0, warmup=20.0)


class TestHandshakeExperiment:
    def test_curve_is_monotone(self):
        curve = handshake_expected_messages((0.2, 0.5, 1.0))
        assert curve[1.0] == pytest.approx(3.0)
        assert curve[0.2] > curve[0.5] > curve[1.0]


class TestBaseHelpers:
    def test_all_mac_kinds_buildable(self, sim, channel):
        from repro.phy.radio import Radio

        assert "tdma" in MAC_KINDS  # the registry picks up the new baseline
        for index, kind in enumerate(MAC_KINDS):
            radio = Radio(sim, channel, 100 + index)
            mac = make_mac_factory(kind)(sim, radio)
            assert mac.name == kind
        with pytest.raises(ValueError):
            make_mac_factory("not-a-mac")

    def test_repeat_scalar_and_summarize(self):
        mean, ci, samples = repeat_scalar(lambda seed: float(seed), repetitions=3)
        assert samples == [0.0, 1.0, 2.0]
        assert mean == 1.0
        summary = summarize(samples)
        assert summary["n"] == 3
        with pytest.raises(ValueError):
            repeat_scalar(lambda seed: 0.0, repetitions=0)
