"""Unit tests for the slotted ALOHA and ALOHA-Q baselines."""

from __future__ import annotations

import pytest

from repro.mac.aloha import AlohaConfig, AlohaQ, SlottedAloha
from repro.phy.channel import WirelessChannel
from repro.phy.frames import Frame, FrameKind
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


def build_star(sim, mac_cls, num_senders=2, config=None):
    """``num_senders`` sender nodes plus sink node 0; everybody hears everybody."""
    channel = WirelessChannel(sim)
    radios = [Radio(sim, channel, i) for i in range(num_senders + 1)]
    for i in range(num_senders + 1):
        for j in range(i + 1, num_senders + 1):
            channel.connect(i, j)
    sink_mac = SlottedAloha(sim, radios[0], config=config)
    sender_macs = [mac_cls(sim, radios[i], config=config) for i in range(1, num_senders + 1)]
    for mac in [sink_mac] + sender_macs:
        mac.start()
    return sink_mac, sender_macs


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        AlohaConfig(slots_per_frame=0)
    with pytest.raises(ValueError):
        AlohaConfig(learning_rate=0.0)
    with pytest.raises(ValueError):
        AlohaConfig(exploration_rate=1.5)


def test_slotted_aloha_delivers_single_sender():
    sim = Simulator(seed=1)
    sink, (sender,) = build_star(sim, SlottedAloha, num_senders=1)
    received = []
    sink.receive_callback = received.append
    for _ in range(5):
        sender.send(Frame(FrameKind.DATA, src=1, dst=0))
    sim.run_until(5.0)
    assert len(received) == 5
    assert sender.stats.tx_success == 5


def test_aloha_transmits_only_in_chosen_slot():
    sim = Simulator(seed=1)
    config = AlohaConfig(slots_per_frame=4, slot_duration=10e-3)
    sink, (sender,) = build_star(sim, SlottedAloha, num_senders=1, config=config)
    tx_times = []
    original = sender._begin_transmission

    def spy(frame):
        tx_times.append(sim.now)
        return original(frame)

    sender._begin_transmission = spy
    for _ in range(3):
        sender.send(Frame(FrameKind.DATA, src=1, dst=0))
    sim.run_until(2.0)
    # Transmissions start on slot boundaries (multiples of the slot duration).
    assert tx_times
    for t in tx_times:
        fraction = (t / config.slot_duration) % 1
        assert min(fraction, 1.0 - fraction) < 1e-6


def test_aloha_q_learns_distinct_slots_for_two_senders():
    sim = Simulator(seed=7)
    config = AlohaConfig(slots_per_frame=6, slot_duration=8e-3, exploration_rate=0.05)
    sink, senders = build_star(sim, AlohaQ, num_senders=2, config=config)
    received = []
    sink.receive_callback = received.append

    # Saturated senders: keep the queues topped up.
    def refill():
        for index, sender in enumerate(senders, start=1):
            if sender.queue.level < 2:
                sender.send(Frame(FrameKind.DATA, src=index, dst=0))
        sim.schedule(config.slot_duration, refill)

    sim.schedule(0.0, refill)
    sim.run_until(40.0)

    best_slots = [max(range(len(s.q_values)), key=lambda i: s.q_values[i]) for s in senders]
    # After convergence the two senders occupy different slots.
    assert best_slots[0] != best_slots[1]
    assert all(s.converged(threshold=0.5) for s in senders)
    assert len(received) > 100


def test_aloha_q_negative_reward_on_collisions():
    sim = Simulator(seed=3)
    config = AlohaConfig(slots_per_frame=1, slot_duration=8e-3, max_frame_retries=1)
    sink, senders = build_star(sim, AlohaQ, num_senders=2, config=config)
    # Only one slot exists, so the two saturated senders must always collide.
    for index, sender in enumerate(senders, start=1):
        for _ in range(5):
            sender.send(Frame(FrameKind.DATA, src=index, dst=0))
    sim.run_until(2.0)
    assert all(s.q_values[0] < 0 for s in senders)


def test_aloha_stop_cancels_slot_clock():
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    radio = Radio(sim, channel, 0)
    mac = SlottedAloha(sim, radio)
    mac.start()
    mac.stop()
    sim.run_until(1.0)
    assert sim.pending_events() == 0
