"""Tests of the shared MAC machinery (ACKs, duplicates, statistics)."""

from __future__ import annotations

from repro.mac.csma import UnslottedCsmaCa
from repro.phy.channel import WirelessChannel
from repro.phy.frames import Frame, FrameKind
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


def build_pair(seed=1, link_error=0.0):
    sim = Simulator(seed=seed)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    if link_error:
        channel.set_link_error_rate(0, 1, link_error, bidirectional=False)
    mac_a = UnslottedCsmaCa(sim, radio_a)
    mac_b = UnslottedCsmaCa(sim, radio_b)
    mac_a.start()
    mac_b.start()
    return sim, channel, mac_a, mac_b


def test_receiver_acknowledges_and_deduplicates():
    sim, channel, mac_a, mac_b = build_pair()
    # Drop every ACK from B to A so that A keeps retransmitting.
    channel.set_link_error_rate(1, 0, 1.0, bidirectional=False)
    received = []
    mac_b.receive_callback = received.append
    frame = Frame(FrameKind.DATA, src=0, dst=1)
    mac_a.send(frame)
    sim.run_until(2.0)
    # A retransmitted several times but B delivered the frame only once.
    assert len(received) == 1
    assert mac_a.stats.tx_attempts > 1
    assert mac_b.stats.duplicates_suppressed >= 1
    assert mac_b.stats.acks_sent >= 2


def test_overhearing_counts_foreign_frames():
    sim = Simulator(seed=2)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    radio_x = Radio(sim, channel, 2)
    for pair in ((0, 1), (0, 2), (1, 2)):
        channel.connect(*pair)
    mac_a = UnslottedCsmaCa(sim, radio_a)
    mac_b = UnslottedCsmaCa(sim, radio_b)
    mac_x = UnslottedCsmaCa(sim, radio_x)
    for mac in (mac_a, mac_b, mac_x):
        mac.start()
    overheard = []
    mac_x.overhear_callback = overheard.append
    mac_a.send(Frame(FrameKind.DATA, src=0, dst=1))
    sim.run_until(1.0)
    kinds = {frame.kind for frame in overheard}
    # Node 2 overhears both the data frame and the ACK.
    assert FrameKind.DATA in kinds
    assert FrameKind.ACK in kinds
    assert mac_x.stats.frames_overheard >= 2


def test_attempts_per_success_statistic():
    sim, channel, mac_a, mac_b = build_pair()
    for _ in range(3):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1))
    sim.run_until(2.0)
    assert mac_a.stats.attempts_per_success == 1.0


def test_per_kind_outcomes_recorded():
    sim, channel, mac_a, mac_b = build_pair()
    mac_a.send(Frame(FrameKind.GTS_REQUEST, src=0, dst=1))
    sim.run_until(1.0)
    assert mac_a.stats.per_kind_sent.get(FrameKind.GTS_REQUEST) == 1
