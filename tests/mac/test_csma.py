"""Unit and behaviour tests for the CSMA/CA baselines."""

from __future__ import annotations

import pytest

from repro.mac.csma import CsmaConfig, SlottedCsmaCa, UnslottedCsmaCa
from repro.phy.channel import WirelessChannel
from repro.phy.frames import BROADCAST, Frame, FrameKind
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


def build_pair(sim, mac_cls=UnslottedCsmaCa, config=None):
    """Two nodes in range of each other running the given CSMA variant."""
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    mac_a = mac_cls(sim, radio_a, config=config)
    mac_b = mac_cls(sim, radio_b, config=config)
    mac_a.start()
    mac_b.start()
    return mac_a, mac_b, channel


@pytest.mark.parametrize("mac_cls", [UnslottedCsmaCa, SlottedCsmaCa])
def test_unicast_delivery_with_ack(mac_cls):
    sim = Simulator(seed=1)
    mac_a, mac_b, _ = build_pair(sim, mac_cls)
    received = []
    mac_b.receive_callback = received.append
    outcomes = []
    mac_a.sent_callback = lambda frame, ok: outcomes.append(ok)
    frame = Frame(FrameKind.DATA, src=0, dst=1)
    assert mac_a.send(frame)
    sim.run_until(1.0)
    assert [f.seq for f in received] == [frame.seq]
    assert outcomes == [True]
    assert mac_a.stats.tx_success == 1
    assert mac_b.stats.acks_sent == 1
    assert mac_a.queue.empty


@pytest.mark.parametrize("mac_cls", [UnslottedCsmaCa, SlottedCsmaCa])
def test_broadcast_has_no_ack_and_completes(mac_cls):
    sim = Simulator(seed=1)
    mac_a, mac_b, _ = build_pair(sim, mac_cls)
    received = []
    mac_b.receive_callback = received.append
    frame = Frame(FrameKind.ROUTE_DISCOVERY, src=0, dst=BROADCAST)
    mac_a.send(frame)
    sim.run_until(1.0)
    assert len(received) == 1
    assert mac_a.stats.broadcasts_sent == 1
    assert mac_b.stats.acks_sent == 0


def test_retransmission_until_drop_when_receiver_unreachable():
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    Radio(sim, channel, 1)
    # No link: node 1 never receives, so node 0 never gets an ACK.
    config = CsmaConfig(max_frame_retries=2)
    mac_a = UnslottedCsmaCa(sim, radio_a, config=config)
    mac_a.start()
    outcomes = []
    mac_a.sent_callback = lambda frame, ok: outcomes.append(ok)
    frame = Frame(FrameKind.DATA, src=0, dst=1)
    mac_a.send(frame)
    sim.run_until(5.0)
    assert outcomes == [False]
    assert mac_a.stats.dropped_retries == 1
    # initial attempt + max_frame_retries retransmissions
    assert mac_a.stats.tx_attempts == config.max_frame_retries + 1
    assert mac_a.queue.empty


def test_queue_serves_multiple_frames_in_order():
    sim = Simulator(seed=1)
    mac_a, mac_b, _ = build_pair(sim)
    received = []
    mac_b.receive_callback = lambda f: received.append(f.meta["index"])
    for index in range(5):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1, meta={"index": index}))
    sim.run_until(2.0)
    assert received == [0, 1, 2, 3, 4]


def test_queue_overflow_drops_packets():
    sim = Simulator(seed=1)
    config = CsmaConfig(queue_capacity=2)
    mac_a, mac_b, _ = build_pair(sim, config=config)
    for _ in range(5):
        mac_a.send(Frame(FrameKind.DATA, src=0, dst=1))
    assert mac_a.stats.queue_drops >= 2


def test_cca_defers_to_ongoing_transmission():
    """A third node transmitting keeps the CSMA sender in backoff (busy CCAs)."""
    sim = Simulator(seed=3)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    radio_x = Radio(sim, channel, 2)
    channel.connect(0, 1)
    channel.connect(0, 2)
    channel.connect(1, 2)
    mac_a = UnslottedCsmaCa(sim, radio_a, config=CsmaConfig())
    mac_b = UnslottedCsmaCa(sim, radio_b)
    mac_a.start()
    mac_b.start()
    received = []
    mac_b.receive_callback = received.append
    # Node 2 occupies the channel with a long foreign transmission.
    blocker = Frame(FrameKind.DATA, src=2, dst=1, payload_bytes=110)
    radio_x.transmit(blocker, duration=0.05)
    mac_a.send(Frame(FrameKind.DATA, src=0, dst=1))
    sim.run_until(1.0)
    assert mac_a.stats.cca_busy >= 1
    # The attempt finished: either the frame was delivered after the channel
    # became free again, or the standard dropped it as a channel-access
    # failure after macMaxCSMABackoffs busy CCAs.  Either way the frame has
    # left the queue and its outcome was recorded.
    delivered = any(f.src == 0 for f in received)
    assert delivered or mac_a.stats.dropped_channel_access == 1
    assert mac_a.queue.empty


def test_hidden_node_collisions_reduce_csma_reliability():
    """Both hidden senders transmitting simultaneously lose frames at the sink."""
    sim = Simulator(seed=5)
    channel = WirelessChannel(sim)
    radio_a = Radio(sim, channel, 0)
    radio_b = Radio(sim, channel, 1)
    radio_c = Radio(sim, channel, 2)
    channel.connect(0, 1)
    channel.connect(1, 2)
    macs = [UnslottedCsmaCa(sim, r) for r in (radio_a, radio_b, radio_c)]
    for mac in macs:
        mac.start()
    received = []
    macs[1].receive_callback = received.append
    num_frames = 30
    for i in range(num_frames):
        send_time = i * 0.01
        sim.schedule(send_time, macs[0].send, Frame(FrameKind.DATA, src=0, dst=1))
        sim.schedule(send_time, macs[2].send, Frame(FrameKind.DATA, src=2, dst=1))
    sim.run_until(20.0)
    # With synchronised hidden senders some frames must be lost despite retries.
    assert len(received) < 2 * num_frames


def test_slotted_csma_aligns_cca_to_backoff_boundaries():
    sim = Simulator(seed=2)
    mac_a, mac_b, _ = build_pair(sim, SlottedCsmaCa)
    received = []
    mac_b.receive_callback = received.append
    mac_a.send(Frame(FrameKind.DATA, src=0, dst=1))
    sim.run_until(1.0)
    assert len(received) == 1
    # Slotted CSMA performs CW=2 CCAs per transmission.
    assert mac_a.stats.cca_performed >= 2


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        CsmaConfig(mac_min_be=6, mac_max_be=5)
    with pytest.raises(ValueError):
        CsmaConfig(max_csma_backoffs=-1)
