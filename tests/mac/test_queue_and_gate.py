"""Unit tests for the packet queue and the activity gates."""

from __future__ import annotations

import pytest

from repro.mac.gate import AlwaysActiveGate, WindowedGate
from repro.mac.queue import PacketQueue
from repro.phy.frames import Frame, FrameKind
from repro.sim.engine import Simulator


def make_frame(seq_src=0):
    return Frame(FrameKind.DATA, src=seq_src, dst=1)


class TestPacketQueue:
    def test_fifo_order(self, sim):
        queue = PacketQueue(sim, capacity=8)
        frames = [make_frame() for _ in range(3)]
        for frame in frames:
            assert queue.push(frame)
        assert queue.pop() is frames[0]
        assert queue.pop() is frames[1]
        assert queue.peek() is frames[2]
        assert queue.level == 1

    def test_capacity_enforced_and_drops_counted(self, sim):
        queue = PacketQueue(sim, capacity=2)
        assert queue.push(make_frame())
        assert queue.push(make_frame())
        assert not queue.push(make_frame())
        assert queue.dropped_full == 1
        assert queue.full

    def test_pop_empty_returns_none(self, sim):
        queue = PacketQueue(sim, capacity=2)
        assert queue.pop() is None
        assert queue.peek() is None
        assert queue.empty

    def test_push_front(self, sim):
        queue = PacketQueue(sim, capacity=8)
        first, second = make_frame(), make_frame()
        queue.push(first)
        queue.push_front(second)
        assert queue.pop() is second

    def test_time_weighted_average_level(self):
        sim = Simulator()
        queue = PacketQueue(sim, capacity=8)
        frame = make_frame()
        sim.schedule(0.0, queue.push, frame)
        sim.schedule(4.0, queue.pop)
        sim.run_until(10.0)
        # Occupied with one packet for 4 of 10 seconds.
        assert queue.average_level() == pytest.approx(0.4, abs=0.01)

    def test_reset_statistics_restarts_window(self):
        sim = Simulator()
        queue = PacketQueue(sim, capacity=8)
        queue.push(make_frame())
        sim.run_until(10.0)
        queue.reset_statistics()
        sim.run_until(20.0)
        assert queue.average_level() == pytest.approx(1.0, abs=0.01)

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            PacketQueue(sim, capacity=0)


class TestGates:
    def test_always_active(self):
        gate = AlwaysActiveGate()
        assert gate.active(0.0) and gate.active(1e9)
        assert gate.next_active_time(5.0) == 5.0

    def test_windowed_gate_activity(self):
        gate = WindowedGate(period=10.0, window=4.0, offset=1.0)
        assert not gate.active(0.5)       # before the first window
        assert gate.active(1.0)
        assert gate.active(4.9)
        assert not gate.active(5.5)
        assert gate.active(11.0)          # second period

    def test_windowed_gate_next_active_time(self):
        gate = WindowedGate(period=10.0, window=4.0, offset=1.0)
        assert gate.next_active_time(0.0) == 1.0
        assert gate.next_active_time(2.0) == 2.0
        assert gate.next_active_time(6.0) == pytest.approx(11.0)

    def test_windowed_gate_remaining_time(self):
        gate = WindowedGate(period=10.0, window=4.0)
        assert gate.remaining_active_time(1.0) == pytest.approx(3.0)
        assert gate.remaining_active_time(5.0) == 0.0

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            WindowedGate(period=1.0, window=2.0)
        with pytest.raises(ValueError):
            WindowedGate(period=0.0, window=0.0)
