"""Unit tests for the packet queue and the activity gates."""

from __future__ import annotations

import pytest

from repro.mac.gate import AlwaysActiveGate, WindowedGate
from repro.mac.queue import PacketQueue
from repro.phy.frames import Frame, FrameKind
from repro.sim.engine import Simulator


def make_frame(seq_src=0):
    return Frame(FrameKind.DATA, src=seq_src, dst=1)


class TestPacketQueue:
    def test_fifo_order(self, sim):
        queue = PacketQueue(sim, capacity=8)
        frames = [make_frame() for _ in range(3)]
        for frame in frames:
            assert queue.push(frame)
        assert queue.pop() is frames[0]
        assert queue.pop() is frames[1]
        assert queue.peek() is frames[2]
        assert queue.level == 1

    def test_capacity_enforced_and_drops_counted(self, sim):
        queue = PacketQueue(sim, capacity=2)
        assert queue.push(make_frame())
        assert queue.push(make_frame())
        assert not queue.push(make_frame())
        assert queue.dropped_full == 1
        assert queue.full

    def test_pop_empty_returns_none(self, sim):
        queue = PacketQueue(sim, capacity=2)
        assert queue.pop() is None
        assert queue.peek() is None
        assert queue.empty

    def test_push_front(self, sim):
        queue = PacketQueue(sim, capacity=8)
        first, second = make_frame(), make_frame()
        queue.push(first)
        queue.push_front(second)
        assert queue.pop() is second

    def test_time_weighted_average_level(self):
        sim = Simulator()
        queue = PacketQueue(sim, capacity=8)
        frame = make_frame()
        sim.schedule(0.0, queue.push, frame)
        sim.schedule(4.0, queue.pop)
        sim.run_until(10.0)
        # Occupied with one packet for 4 of 10 seconds.
        assert queue.average_level() == pytest.approx(0.4, abs=0.01)

    def test_reset_statistics_restarts_window(self):
        sim = Simulator()
        queue = PacketQueue(sim, capacity=8)
        queue.push(make_frame())
        sim.run_until(10.0)
        queue.reset_statistics()
        sim.run_until(20.0)
        assert queue.average_level() == pytest.approx(1.0, abs=0.01)

    def test_invalid_capacity(self, sim):
        with pytest.raises(ValueError):
            PacketQueue(sim, capacity=0)

    # ------------------------------------------------- full-queue drop policy
    def test_drop_tail_keeps_already_queued_frames(self, sim):
        """A full queue drops the *arriving* frame, never a queued one."""
        queue = PacketQueue(sim, capacity=2)
        first, second, third = make_frame(), make_frame(), make_frame()
        assert queue.push(first) and queue.push(second)
        assert not queue.push(third)
        assert list(queue) == [first, second]
        assert queue.level == 2

    def test_push_front_on_full_queue_drops_and_counts(self, sim):
        queue = PacketQueue(sim, capacity=1)
        head, reinserted = make_frame(), make_frame()
        assert queue.push(head)
        assert not queue.push_front(reinserted)
        assert queue.dropped_full == 1
        assert queue.peek() is head  # the head of line is untouched

    def test_drops_do_not_disturb_counters_or_average(self):
        sim = Simulator()
        queue = PacketQueue(sim, capacity=1)
        queue.push(make_frame())
        for _ in range(5):
            queue.push(make_frame())
        sim.run_until(10.0)
        assert queue.enqueued == 1
        assert queue.dropped_full == 5
        assert queue.average_level() == pytest.approx(1.0, abs=0.01)

    def test_full_then_drained_queue_accepts_again(self, sim):
        queue = PacketQueue(sim, capacity=1)
        queue.push(make_frame())
        assert not queue.push(make_frame())
        queue.pop()
        assert queue.push(make_frame())
        assert queue.dropped_full == 1

    def test_average_level_with_zero_elapsed_time(self, sim):
        queue = PacketQueue(sim, capacity=4)
        queue.push(make_frame())
        queue.push(make_frame())
        # No simulated time has passed: the average falls back to the
        # instantaneous level instead of dividing by zero.
        assert queue.average_level() == 2.0

    def test_clear_accumulates_statistics_first(self):
        sim = Simulator()
        queue = PacketQueue(sim, capacity=4)
        queue.push(make_frame())
        sim.run_until(5.0)
        queue.clear()
        sim.run_until(10.0)
        # One frame for 5 of 10 seconds.
        assert queue.average_level() == pytest.approx(0.5, abs=0.01)
        assert queue.empty


class TestGates:
    def test_always_active(self):
        gate = AlwaysActiveGate()
        assert gate.active(0.0) and gate.active(1e9)
        assert gate.next_active_time(5.0) == 5.0

    def test_windowed_gate_activity(self):
        gate = WindowedGate(period=10.0, window=4.0, offset=1.0)
        assert not gate.active(0.5)       # before the first window
        assert gate.active(1.0)
        assert gate.active(4.9)
        assert not gate.active(5.5)
        assert gate.active(11.0)          # second period

    def test_windowed_gate_next_active_time(self):
        gate = WindowedGate(period=10.0, window=4.0, offset=1.0)
        assert gate.next_active_time(0.0) == 1.0
        assert gate.next_active_time(2.0) == 2.0
        assert gate.next_active_time(6.0) == pytest.approx(11.0)

    def test_windowed_gate_remaining_time(self):
        gate = WindowedGate(period=10.0, window=4.0)
        assert gate.remaining_active_time(1.0) == pytest.approx(3.0)
        assert gate.remaining_active_time(5.0) == 0.0

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            WindowedGate(period=1.0, window=2.0)
        with pytest.raises(ValueError):
            WindowedGate(period=0.0, window=0.0)

    # --------------------------------------- open/close races at boundaries
    def test_exact_window_close_boundary_is_inactive(self):
        """The window is half-open: [start, start + window)."""
        gate = WindowedGate(period=10.0, window=4.0)
        assert gate.active(3.999999)
        assert not gate.active(4.0)
        assert gate.remaining_active_time(4.0) == 0.0

    def test_exact_period_boundary_is_active_again(self):
        gate = WindowedGate(period=10.0, window=4.0)
        assert gate.active(10.0)
        assert gate.next_active_time(10.0) == 10.0
        assert gate.remaining_active_time(10.0) == pytest.approx(4.0)

    def test_float_accumulated_boundary_snaps_into_the_new_period(self):
        """A time infinitesimally below k*period (float error) counts as open.

        Repeatedly adding a period in floating point can land a subslot
        tick just before the true boundary; the epsilon snap must treat it
        as the start of the next window rather than the tail of the closed
        previous one.
        """
        period = 0.1
        gate = WindowedGate(period=period, window=0.04)
        t = 0.0
        for _ in range(30):
            t += period
        # t is now 3.0000000000000004-ish or slightly below 3.0 — either way
        # it must be active and next_active_time must not postpone it.
        assert gate.active(t)
        assert gate.next_active_time(t) == t
        just_below = 3.0 - 1e-12  # closer to the boundary than _EPSILON
        assert gate.active(just_below)
        assert gate.remaining_active_time(just_below) == pytest.approx(0.04)

    def test_next_active_time_from_inside_closed_phase_hits_window_start(self):
        gate = WindowedGate(period=10.0, window=4.0, offset=1.0)
        resume = gate.next_active_time(9.0)
        assert resume == pytest.approx(11.0)
        assert gate.active(resume)

    def test_mac_scheduled_at_gate_resume_finds_gate_open(self):
        """The CSMA/QMA pattern: schedule_at(next_active_time(now)) must land open."""
        gate = WindowedGate(period=0.12288, window=0.0576)  # DSME-ish numbers
        sim = Simulator()
        observed = []

        def probe():
            observed.append(gate.active(sim.now))
            if len(observed) < 50:
                resume = gate.next_active_time(sim.now + 0.001)
                sim.schedule_at(max(resume, sim.now), probe)

        sim.schedule(0.0, probe)
        sim.run()
        assert all(observed)
