"""Tests for the MAC registry (and the generic registry machinery)."""

from __future__ import annotations

import pytest

from repro.core.mac import QmaMac
from repro.mac.aloha import AlohaConfig
from repro.mac.base import MacProtocol
from repro.mac.csma import CsmaConfig
from repro.mac.registry import (
    MAC_REGISTRY,
    RegistryError,
    create_mac,
    get_mac_spec,
    mac_kinds,
    register_mac,
)
from repro.mac.tdma import Tdma, TdmaConfig
from repro.phy.radio import Radio
from repro.registry import Registry


class TestGenericRegistry:
    def test_register_get_and_order(self):
        registry = Registry("thing")
        registry.register("a", 1)
        registry.register("b", 2)
        assert registry.get("a") == 1
        assert registry.names() == ("a", "b")
        assert "a" in registry and "c" not in registry
        assert len(registry) == 2

    def test_duplicate_names_rejected_unless_replace(self):
        registry = Registry("thing")
        registry.register("a", 1)
        with pytest.raises(RegistryError):
            registry.register("a", 2)
        registry.register("a", 2, replace=True)
        assert registry.get("a") == 2

    def test_unknown_name_error_lists_known_names(self):
        registry = Registry("thing")
        registry.register("alpha", 1)
        with pytest.raises(RegistryError, match="alpha"):
            registry.get("beta")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Registry("thing").register("", 1)

    def test_lazy_builtin_loading(self):
        registry = Registry("lazy", builtin_modules=("repro.mac.tdma",))
        # Import of the module re-registers into MAC_REGISTRY (already
        # loaded), but _ensure_loaded must not raise on repeat imports.
        assert registry.names() == ()


class TestMacRegistry:
    def test_all_paper_macs_plus_tdma_registered(self):
        assert set(mac_kinds()) == {
            "qma",
            "slotted-csma",
            "unslotted-csma",
            "slotted-aloha",
            "aloha-q",
            "tdma",
        }

    def test_every_kind_constructible_by_name(self, sim, channel):
        for index, kind in enumerate(mac_kinds()):
            radio = Radio(sim, channel, 200 + index)
            mac = create_mac(kind, sim, radio)
            assert isinstance(mac, MacProtocol)
            assert mac.name == kind

    def test_spec_carries_protocol_and_config(self):
        spec = get_mac_spec("qma")
        assert spec.protocol is QmaMac
        defaults = spec.config_defaults()
        assert defaults["num_subslots"] == 54
        assert get_mac_spec("tdma").protocol is Tdma

    def test_config_type_is_validated(self, sim, channel):
        radio = Radio(sim, channel, 300)
        with pytest.raises(TypeError):
            create_mac("slotted-csma", sim, radio, config=AlohaConfig())
        mac = create_mac("slotted-csma", sim, radio, config=CsmaConfig(mac_min_be=2))
        assert mac.config.mac_min_be == 2

    def test_unknown_mac_raises_registry_error(self, sim, channel):
        with pytest.raises(RegistryError, match="qma"):
            get_mac_spec("not-a-mac")

    def test_third_party_registration_via_decorator(self, sim, channel):
        @register_mac("test-custom-mac", config_cls=TdmaConfig)
        class CustomMac(Tdma):
            name = "test-custom-mac"

        try:
            radio = Radio(sim, channel, 301)
            mac = create_mac("test-custom-mac", sim, radio)
            assert isinstance(mac, CustomMac)
        finally:
            # Keep the process-wide registry clean for other tests.
            MAC_REGISTRY._entries.pop("test-custom-mac", None)
