"""Tests for the fixed-assignment TDMA baseline."""

from __future__ import annotations

import pytest

from repro.mac.tdma import Tdma, TdmaConfig
from repro.phy.frames import Frame, FrameKind


def make_frame(src, dst):
    return Frame(FrameKind.DATA, src=src, dst=dst)


class TestTdmaConfig:
    def test_defaults_valid(self):
        config = TdmaConfig()
        assert config.slots_per_frame == 10
        assert config.slot_duration > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"slots_per_frame": 0},
            {"slot_duration": 0.0},
            {"max_frame_retries": -1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TdmaConfig(**kwargs)


class TestTdma:
    def test_own_slot_is_node_id_modulo_slots(self, sim, line_radios):
        macs = [Tdma(sim, radio, config=TdmaConfig(slots_per_frame=2)) for radio in line_radios]
        assert [mac.own_slot for mac in macs] == [0, 1, 0]

    def test_delivers_between_neighbours(self, sim, line_radios):
        macs = [Tdma(sim, radio) for radio in line_radios]
        received = []
        macs[1].receive_callback = received.append
        for mac in macs:
            mac.start()
        macs[0].send(make_frame(0, 1))
        sim.run_until(1.0)
        assert len(received) == 1
        assert macs[0].stats.tx_success == 1

    def test_hidden_senders_never_collide_with_distinct_slots(self, sim, line_radios):
        """0 and 2 are hidden from each other but own different TDMA slots."""
        config = TdmaConfig(slots_per_frame=3)
        macs = [Tdma(sim, radio, config=config) for radio in line_radios]
        received = []
        macs[1].receive_callback = received.append
        for mac in macs:
            mac.start()
        for _ in range(5):
            macs[0].send(make_frame(0, 1))
            macs[2].send(make_frame(2, 1))
        sim.run_until(2.0)
        assert len(received) == 10
        assert sim.rng is not None  # determinism: no RNG stream is even used

    def test_transmits_only_in_own_slot(self, sim, line_radios):
        config = TdmaConfig(slots_per_frame=4, slot_duration=0.01)
        mac = Tdma(sim, line_radios[2], config=config)  # own slot = 2
        mac.start()
        mac.send(make_frame(2, 1))
        sim.run_until(0.0201)  # slots 0 and 1 have elapsed, slot 2 just began
        assert line_radios[2].frames_sent == 1
        assert sim.now >= 0.02

    def test_retry_limit_drops_frame(self, sim, channel):
        from repro.phy.radio import Radio

        # A single radio with no neighbours: every transmission goes
        # unacknowledged until the retry limit drops the frame.
        radio = Radio(sim, channel, 7)
        mac = Tdma(sim, radio, config=TdmaConfig(max_frame_retries=1))
        mac.start()
        mac.send(make_frame(7, 8))
        sim.run_until(2.0)
        assert mac.stats.dropped_retries == 1
        assert mac.queue.level == 0

    def test_stop_cancels_clock(self, sim, line_radios):
        mac = Tdma(sim, line_radios[0])
        mac.start()
        mac.stop()
        events_before = sim.pending_events()
        sim.run_until(1.0)
        assert sim.events_executed <= events_before
