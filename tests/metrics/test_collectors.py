"""Tests for the built-in metric collectors.

The parity classes re-implement the *pre-redesign* metric computations
(verbatim ports of the retired result-dataclass runners) and assert exact
float equality with the collector-produced report scalars — the redesign's
"numerically identical for fixed seeds" guarantee.
"""

from __future__ import annotations

import pytest

from repro.core.config import QmaConfig
from repro.experiments.base import MAC_KINDS
from repro.experiments.hidden_node import SOURCES, run_hidden_node
from repro.experiments.scalability import run_scalability
from repro.experiments.testbed import run_star
from repro.mac.registry import get_mac_spec
from repro.metrics import (
    COLLECTOR_REGISTRY,
    MetricCollector,
    collector_kinds,
    get_collector_spec,
    register_collector,
)
from repro.metrics.collectors import PdrCollector
from repro.scenario.builder import ScenarioBuilder
from repro.scenario.config import ScenarioConfig

BUILTIN_COLLECTORS = ("attempts", "convergence", "delay", "dsme", "pdr", "queue", "slots")


@register_collector("test-hops", description="mean hop count (test collector)")
class HopCollector(MetricCollector):
    """Custom collector used to exercise the plugin path."""

    def __init__(self) -> None:
        self._hops = []

    def provides(self):
        return ("average_hops",)

    def attach(self, ctx):
        ctx.network.add_delivery_hook(lambda node, record: self._hops.append(record.hops))

    def finalize(self, ctx, report):
        report.scalars["average_hops"] = (
            sum(self._hops) / len(self._hops) if self._hops else 0.0
        )


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_COLLECTORS) <= set(collector_kinds())

    def test_spec_provides_and_defaults(self):
        spec = get_collector_spec("pdr")
        assert "pdr" in spec.provides()
        assert "overall_pdr" in spec.provides(scalar_name="overall_pdr")
        assert spec.config_defaults()["per_node"] is False

    def test_unknown_collector_raises_listing_names(self):
        with pytest.raises(KeyError, match="pdr"):
            COLLECTOR_REGISTRY.get("not-a-collector")

    def test_custom_collector_usable_by_name(self):
        report = run_hidden_node(
            mac="qma",
            delta=10,
            packets_per_node=8,
            warmup=5,
            seed=1,
            collectors=("pdr", "test-hops"),
        )
        assert report.scalars["average_hops"] >= 1.0
        assert 0.0 <= report.scalars["pdr"] <= 1.0


class TestCollectorBehaviour:
    def test_pdr_collector_validates_parameters(self):
        with pytest.raises(ValueError, match="denominator"):
            PdrCollector(denominator="bogus")
        with pytest.raises(ValueError, match="delivered_scalar"):
            PdrCollector(delivered_scalar="bogus")

    def test_dsme_collector_requires_dsme_scenario(self):
        with pytest.raises(ValueError, match="DSME"):
            run_hidden_node(
                mac="qma", delta=10, packets_per_node=5, warmup=5, seed=0, collectors=("dsme",)
            )

    def test_observers_do_not_perturb_the_run(self):
        """Scalars are identical whichever observing collectors ride along."""
        kwargs = dict(mac="qma", delta=10, packets_per_node=10, warmup=5, seed=2)
        full = run_hidden_node(**kwargs)
        only_pdr = run_hidden_node(collectors=("pdr",), **kwargs)
        nothing = run_hidden_node(collectors=("queue",), **kwargs)
        assert only_pdr.scalars["pdr"] == full.scalars["pdr"]
        assert nothing.scalars["average_queue_level"] == full.scalars["average_queue_level"]
        assert only_pdr.duration == full.duration == nothing.duration

    def test_slots_collector_scalars(self):
        report = run_hidden_node(
            mac="qma", delta=25, packets_per_node=60, warmup=5, seed=2, collectors=("slots",)
        )
        # No emit_scalars override through the generic path: scalar-free,
        # but the utilisation details and per-node tables are populated.
        assert "slot_utilisation" in report.details
        assert set(report.tables["subslots"]) == set(SOURCES)

    def test_scalability_accepts_generic_collectors(self):
        report = run_scalability(
            mac="unslotted-csma",
            rings=1,
            duration=40.0,
            warmup=20.0,
            seed=1,
            collectors=("dsme", "attempts", "queue"),
        )
        assert report.scalars["transmission_attempts"] > 0
        assert report.scalars["average_queue_level"] >= 0.0
        assert 0.0 <= report.scalars["secondary_pdr"] <= 1.0


class TestTraceBound:
    def test_bounded_trace_surfaces_dropped_count(self):
        report = run_hidden_node(
            mac="qma", delta=10, packets_per_node=10, warmup=5, seed=1,
            trace=True, trace_limit=5,
        )
        assert report.trace_dropped > 0

    def test_unbounded_trace_drops_nothing(self):
        report = run_hidden_node(
            mac="qma", delta=10, packets_per_node=10, warmup=5, seed=1, trace=True
        )
        assert report.trace_dropped == 0

    def test_campaign_applies_default_trace_bound(self):
        from repro.campaign.runner import DEFAULT_TRACE_LIMIT, _campaign_params
        from repro.campaign.spec import Scenario

        scenario = Scenario(
            experiment="hidden-node",
            params={"delta": 10.0, "packets_per_node": 5, "warmup": 5.0, "trace": True},
        )
        assert _campaign_params(scenario)["trace_limit"] == DEFAULT_TRACE_LIMIT
        # An explicit limit wins over the campaign default.
        scenario.params["trace_limit"] = 3
        assert _campaign_params(scenario)["trace_limit"] == 3

    def test_dropped_count_reaches_record_metrics(self):
        from repro.campaign.runner import execute_scenario
        from repro.campaign.spec import Scenario

        record = execute_scenario(
            Scenario(
                experiment="hidden-node",
                mac="qma",
                seed=1,
                params={
                    "delta": 10.0,
                    "packets_per_node": 8,
                    "warmup": 5.0,
                    "trace": True,
                    "trace_limit": 3,
                },
            )
        )
        assert record.metrics["trace_dropped"] > 0


# --------------------------------------------------------------------- parity
def _reference_hidden_node(mac: str, delta: float, packets: int, warmup: float, seed: int):
    """Verbatim port of the pre-redesign ``run_hidden_node`` metric path."""
    scenario = ScenarioConfig(
        topology="hidden-node",
        topology_params={"link_distance": 50.0},
        mac=mac,
        seed=seed,
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = QmaConfig()
    built = ScenarioBuilder(scenario).build()
    sim, network = built.sim, built.network
    management = [
        built.attach_management(
            node_id, period=5.0, start_time=1.0, jitter=1.0, rng_name=f"management-{node_id}"
        )
        for node_id in SOURCES
    ]
    network.start()
    data_generators = []
    for node_id, mgmt in zip(SOURCES, management):
        generator = built.poisson_source(
            node_id,
            rate=delta,
            start_time=warmup,
            max_packets=packets,
            rng_name=f"data-{node_id}",
            start_at=warmup,
        )
        data_generators.append(generator)
        sim.schedule_at(warmup, mgmt.stop)
    sim.run_until(warmup + packets / delta + 5.0)

    delivered = sum(
        1
        for record in network.sink.deliveries
        if record.origin in SOURCES and record.created_at >= warmup
    )
    generated = network.packets_generated(SOURCES)
    management_generated = sum(network.node(n).traffic.generated for n in SOURCES)
    data_generated = generated - management_generated
    pdr = 0.0 if data_generated <= 0 else min(1.0, delivered / data_generated)
    return {
        "pdr": pdr,
        "average_queue_level": network.average_queue_level(SOURCES),
        "average_delay": network.average_end_to_end_delay(),
        "packets_generated": float(sum(g.generated for g in data_generators)),
        "packets_delivered": float(len(network.sink.deliveries)),
        "transmission_attempts": float(network.total_transmission_attempts(SOURCES)),
    }


def _reference_star(mac: str, delta: float, packets: int, warmup: float, seed: int):
    """Verbatim port of the pre-redesign testbed metric path (star topology)."""
    scenario = ScenarioConfig(
        topology="iotlab-star", mac=mac, link_error_rate=0.02, seed=seed
    )
    if get_mac_spec(mac).config_cls is QmaConfig:
        scenario.mac_config = QmaConfig()
    built = ScenarioBuilder(scenario).build()
    sim, network = built.sim, built.network
    management = [
        built.attach_management(
            node.node_id, period=2.0, start_time=0.5, jitter=0.4,
            rng_name=f"testbed-mgmt-{node.node_id}",
        )
        for node in network.sources()
    ]
    data_generators = [
        built.poisson_source(
            node.node_id, rate=delta, start_time=warmup, max_packets=packets,
            rng_name=f"testbed-{node.node_id}", start_at=warmup,
        )
        for node in network.sources()
    ]
    network.start()
    for generator in management:
        sim.schedule_at(warmup, generator.stop)
    sim.run_until(warmup + packets / delta + 10.0)

    per_node_pdr = {}
    delivered_total = 0
    generated_total = 0
    for node, generator in zip(network.sources(), data_generators):
        delivered = sum(
            1
            for record in network.sink.deliveries
            if record.origin == node.node_id and record.created_at >= warmup
        )
        generated = generator.generated
        delivered_total += delivered
        generated_total += generated
        if generated:
            per_node_pdr[node.node_id] = min(1.0, delivered / generated)
    overall = min(1.0, delivered_total / generated_total) if generated_total else 0.0
    return {
        "per_node_pdr": per_node_pdr,
        "overall_pdr": overall,
        "packets_generated": float(generated_total),
        "packets_delivered": float(delivered_total),
        "transmission_attempts": float(network.total_transmission_attempts()),
    }


class TestPreRedesignParity:
    """SimReport scalars == the retired result dataclasses, bit for bit."""

    @pytest.mark.parametrize("mac", MAC_KINDS)
    def test_hidden_node_scalars_identical(self, mac):
        reference = _reference_hidden_node(mac, delta=10.0, packets=12, warmup=5.0, seed=3)
        report = run_hidden_node(
            mac=mac, delta=10.0, packets_per_node=12, warmup=5.0, seed=3
        )
        assert report.scalars == reference

    def test_testbed_star_scalars_identical(self):
        reference = _reference_star("qma", delta=2.0, packets=5, warmup=8.0, seed=2)
        report = run_star(mac="qma", delta=2.0, packets_per_node=5, warmup=8.0, seed=2)
        per_node = reference.pop("per_node_pdr")
        assert report.tables["pdr_per_node"] == per_node
        scalars = {
            name: value
            for name, value in report.scalars.items()
            if not name.startswith("pdr_node_")
        }
        assert scalars == reference
        for node_id, pdr in per_node.items():
            assert report.scalars[f"pdr_node_{node_id}"] == pdr

    def test_scalability_scalars_identical(self):
        report = run_scalability(
            mac="unslotted-csma", rings=1, duration=40.0, warmup=20.0, seed=1
        )
        stats = report.details["secondary"]
        assert report.scalars["secondary_pdr"] == stats.pdr
        assert report.scalars["gts_request_success"] == stats.gts_request_success_ratio
        assert report.scalars["allocation_rate"] == stats.allocation_rate(
            report.duration - 20.0
        )
        assert report.scalars["num_nodes"] == 7.0
