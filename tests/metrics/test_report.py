"""Tests for the typed SimReport (accessors, legacy shims, pickling)."""

from __future__ import annotations

import copy
import pickle

import pytest

from repro.metrics.report import SimReport


@pytest.fixture
def report() -> SimReport:
    return SimReport(
        experiment="hidden-node",
        mac="qma",
        topology="hidden-node",
        params={"delta": 10.0, "seed": 3},
        duration=12.5,
        scalars={"pdr": 0.9, "average_delay": 0.05},
        series={"delay": [(1.0, 0.04), (2.0, 0.06)]},
        tables={"q_history": {0: [(1.0, 2.0)], 2: [(1.5, 3.0)]}},
        details={"aux": object()},
        legacy={"q_histories": ("tables", "q_history")},
    )


class TestAccessors:
    def test_scalar_lookup_and_error(self, report):
        assert report.scalar("pdr") == 0.9
        with pytest.raises(KeyError, match="average_delay"):
            report.scalar("nope")

    def test_table_lookup_and_error(self, report):
        assert 0 in report.table("q_history")
        with pytest.raises(KeyError, match="q_history"):
            report.table("nope")

    def test_scalars_and_params_readable_as_attributes(self, report):
        assert report.pdr == 0.9
        assert report.average_delay == 0.05
        assert report.delta == 10.0
        assert report.duration == 12.5  # dataclass field, not __getattr__

    def test_unknown_attribute_raises_attribute_error(self, report):
        with pytest.raises(AttributeError, match="no attribute 'nope'"):
            report.nope
        # Dunder lookups must fail fast, not loop through the fallback.
        with pytest.raises(AttributeError):
            report._private


class TestLegacyShims:
    def test_legacy_attribute_resolves_with_deprecation_warning(self, report):
        with pytest.warns(DeprecationWarning, match="q_histories"):
            assert report.q_histories == {0: [(1.0, 2.0)], 2: [(1.5, 3.0)]}

    def test_legacy_attribute_missing_from_section_raises(self):
        empty = SimReport(legacy={"q_histories": ("tables", "q_history")})
        with pytest.raises(AttributeError):
            empty.q_histories

    def test_legacy_map_excluded_from_equality(self):
        left = SimReport(scalars={"pdr": 1.0}, legacy={"a": ("scalars", "pdr")})
        right = SimReport(scalars={"pdr": 1.0}, legacy={})
        assert left == right

    def test_runner_reports_expose_legacy_attributes(self):
        from repro.experiments import run_hidden_node

        result = run_hidden_node(mac="qma", delta=10, packets_per_node=8, warmup=5, seed=1)
        with pytest.warns(DeprecationWarning):
            assert set(result.policies) == {0, 2}
        assert result.pdr == result.scalars["pdr"]


class TestSerialisation:
    def test_pickle_round_trip(self, report):
        report.details = {}  # plain object() is picklable, but keep it simple
        clone = pickle.loads(pickle.dumps(report))
        assert clone == report
        assert clone.pdr == 0.9

    def test_deepcopy(self, report):
        report.details = {}
        clone = copy.deepcopy(report)
        assert clone == report
        clone.scalars["pdr"] = 0.1
        assert report.scalars["pdr"] == 0.9

    def test_to_dict_is_json_ready(self, report):
        import json

        payload = report.to_dict()
        assert "aux" not in str(payload)  # details are omitted
        text = json.dumps(payload)
        data = json.loads(text)
        assert data["scalars"]["pdr"] == 0.9
        assert data["tables"]["q_history"]["0"] == [[1.0, 2.0]]
