"""Tests for nodes, routing beacons, the network builder and traffic generators."""

from __future__ import annotations

import pytest

from repro.experiments.base import make_mac_factory
from repro.net.network import Network
from repro.net.routing import RouteDiscoveryBeacon
from repro.phy.frames import FrameKind
from repro.sim.engine import Simulator
from repro.topology.hidden_node import NODE_A, NODE_B, NODE_C, hidden_node_topology
from repro.topology.iotlab import iot_lab_tree_topology
from repro.traffic.generators import (
    FluctuatingPoissonTraffic,
    PeriodicTraffic,
    PoissonTraffic,
)


def build_network(topology=None, mac="unslotted-csma", seed=1):
    sim = Simulator(seed=seed)
    topo = topology if topology is not None else hidden_node_topology()
    network = Network(sim, topo, make_mac_factory(mac))
    return sim, network


class TestNodeAndNetwork:
    def test_single_hop_delivery_and_delay(self):
        sim, network = build_network()
        network.start()
        node_a = network.node(NODE_A)
        for k in range(10):
            sim.schedule(0.1 * k, node_a.generate_packet)
        sim.run_until(5.0)
        assert network.packets_delivered() == 10
        assert network.packet_delivery_ratio() == pytest.approx(1.0)
        delays = [record.delay for record in network.sink.deliveries]
        assert all(delay > 0 for delay in delays)
        assert network.average_end_to_end_delay() == pytest.approx(
            sum(delays) / len(delays)
        )

    def test_sink_does_not_generate(self):
        sim, network = build_network()
        assert network.node(NODE_B).generate_packet() is None
        assert network.packets_generated() == 0

    def test_multi_hop_forwarding_in_tree(self):
        sim, network = build_network(topology=iot_lab_tree_topology())
        network.start()
        leaf = network.node(64)           # depth-4 leaf: 64 -> 41 -> 18 -> 28
        for k in range(5):
            sim.schedule(0.2 * k, leaf.generate_packet)
        sim.run_until(10.0)
        assert network.sink.delivered_from(64) == 5
        assert all(record.hops >= 3 for record in network.sink.deliveries)
        # The intermediate nodes forwarded the packets.
        assert network.node(41).packets_forwarded == 5
        assert network.node(18).packets_forwarded == 5

    def test_per_node_pdr(self):
        sim, network = build_network()
        network.start()
        for node_id in (NODE_A, NODE_C):
            node = network.node(node_id)
            for k in range(4):
                sim.schedule(0.3 * k + 0.05 * node_id, node.generate_packet)
        sim.run_until(5.0)
        per_node = network.per_node_pdr()
        assert set(per_node) == {NODE_A, NODE_C}
        assert all(0.0 <= pdr <= 1.0 for pdr in per_node.values())

    def test_handler_registration_redirects_frames(self):
        sim, network = build_network()
        network.start()
        sink = network.node(NODE_B)
        seen = []
        sink.register_handler(FrameKind.GTS_REQUEST, seen.append)
        from repro.phy.frames import Frame

        network.node(NODE_A).send_frame(
            Frame(FrameKind.GTS_REQUEST, src=NODE_A, dst=NODE_B)
        )
        sim.run_until(2.0)
        assert len(seen) == 1
        # Handled frames are not recorded as data deliveries.
        assert sink.deliveries == []

    def test_transmission_attempt_counter(self):
        sim, network = build_network()
        network.start()
        node_a = network.node(NODE_A)
        for _ in range(3):
            node_a.generate_packet()
        sim.run_until(2.0)
        assert network.total_transmission_attempts([NODE_A]) >= 3


class TestRouteDiscoveryBeacon:
    def test_periodic_broadcasts(self):
        sim, network = build_network()
        network.start()
        beacon = RouteDiscoveryBeacon(sim, network.node(NODE_A), period=1.0, jitter=0.0)
        beacon.start()
        overheard = []
        network.mac(NODE_B).receive_callback = overheard.append
        sim.run_until(5.5)
        assert beacon.broadcasts_sent == 5
        assert sum(1 for f in overheard if f.kind is FrameKind.ROUTE_DISCOVERY) == 5

    def test_invalid_period(self):
        sim, network = build_network()
        with pytest.raises(ValueError):
            RouteDiscoveryBeacon(sim, network.node(NODE_A), period=0.0)


class TestTrafficGenerators:
    def test_poisson_rate_and_cap(self):
        sim = Simulator(seed=3)
        count = []
        traffic = PoissonTraffic(sim, lambda: count.append(sim.now), rate=50.0, max_packets=200)
        traffic.start()
        sim.run_until(100.0)
        assert len(count) == 200
        assert traffic.exhausted
        # 200 packets at 50 packets/s take about 4 seconds.
        assert count[-1] == pytest.approx(4.0, rel=0.5)

    def test_poisson_mean_rate(self):
        sim = Simulator(seed=4)
        count = []
        PoissonTraffic(sim, lambda: count.append(1), rate=100.0).start()
        sim.run_until(20.0)
        assert len(count) == pytest.approx(2000, rel=0.15)

    def test_periodic_traffic(self):
        sim = Simulator(seed=5)
        times = []
        PeriodicTraffic(sim, lambda: times.append(sim.now), period=2.0).start()
        sim.run_until(9.0)
        assert times == [2.0, 4.0, 6.0, 8.0]

    def test_start_time_delays_generation(self):
        sim = Simulator(seed=6)
        times = []
        PoissonTraffic(sim, lambda: times.append(sim.now), rate=100.0, start_time=5.0).start()
        sim.run_until(6.0)
        assert all(t >= 5.0 for t in times)
        assert times

    def test_fluctuating_rates(self):
        sim = Simulator(seed=7)
        times = []
        traffic = FluctuatingPoissonTraffic(
            sim, lambda: times.append(sim.now), phases=[(5.0, 10.0), (100.0, 10.0)]
        )
        traffic.start()
        sim.run_until(20.0)
        low_phase = [t for t in times if t < 10.0]
        high_phase = [t for t in times if t >= 10.0]
        assert len(high_phase) > 5 * len(low_phase)
        assert traffic.current_rate(5.0) == 5.0
        assert traffic.current_rate(15.0) == 100.0
        assert traffic.current_rate(25.0) == 5.0

    def test_stop_prevents_further_generation(self):
        sim = Simulator(seed=8)
        count = []
        traffic = PoissonTraffic(sim, lambda: count.append(1), rate=100.0)
        traffic.start()
        sim.schedule(1.0, traffic.stop)
        sim.run_until(5.0)
        generated_at_stop = len(count)
        assert generated_at_stop == pytest.approx(100, rel=0.3)

    def test_invalid_arguments(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonTraffic(sim, lambda: None, rate=0.0)
        with pytest.raises(ValueError):
            PeriodicTraffic(sim, lambda: None, period=1.0, jitter=2.0)
        with pytest.raises(ValueError):
            FluctuatingPoissonTraffic(sim, lambda: None, phases=[])
