"""Unit tests for the wireless channel collision model and the radio."""

from __future__ import annotations

import pytest

from repro.phy.channel import WirelessChannel
from repro.phy.frames import BROADCAST, Frame, FrameKind
from repro.phy.radio import Radio, RadioError


def make_frame(src, dst, payload=20):
    return Frame(FrameKind.DATA, src=src, dst=dst, payload_bytes=payload)


class Collector:
    """Records frames delivered to a radio."""

    def __init__(self, radio: Radio) -> None:
        self.frames = []
        self.corrupted = []
        radio.frame_listener = self.frames.append
        radio.corrupted_listener = self.corrupted.append


def test_single_transmission_is_delivered_to_all_neighbours(sim, channel):
    a = Radio(sim, channel, 0)
    b = Radio(sim, channel, 1)
    c = Radio(sim, channel, 2)
    channel.connect(0, 1)
    channel.connect(0, 2)
    rx_b, rx_c = Collector(b), Collector(c)
    a.transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert len(rx_b.frames) == 1
    assert len(rx_c.frames) == 1  # overheard by c as well
    assert a.frames_sent == 1


def test_concurrent_transmissions_collide_at_common_receiver(sim, channel, line_radios):
    a, b, c = line_radios
    rx_b = Collector(b)
    a.transmit(make_frame(0, 1))
    c.transmit(make_frame(2, 1))
    sim.run_until(1.0)
    assert rx_b.frames == []
    assert len(rx_b.corrupted) == 2
    assert channel.frames_corrupted >= 2


def test_hidden_nodes_do_not_interfere_at_each_other(sim, channel, line_radios):
    a, b, c = line_radios
    rx_a = Collector(a)
    rx_c = Collector(c)
    # B transmits to A; C transmits at the same time but A cannot hear C.
    b_frame = make_frame(1, 0)
    b.transmit(b_frame)
    c.transmit(make_frame(2, 1))
    sim.run_until(1.0)
    assert [f.seq for f in rx_a.frames] == [b_frame.seq]


def test_staggered_overlap_also_collides(sim, channel, line_radios):
    a, b, c = line_radios
    rx_b = Collector(b)
    a.transmit(make_frame(0, 1, payload=50))
    # C starts while A's frame is still in the air.
    sim.schedule(0.5e-3, c.transmit, make_frame(2, 1, payload=50))
    sim.run_until(1.0)
    assert rx_b.frames == []


def test_non_overlapping_transmissions_both_succeed(sim, channel, line_radios):
    a, b, c = line_radios
    rx_b = Collector(b)
    a.transmit(make_frame(0, 1, payload=10))
    sim.schedule(0.1, c.transmit, make_frame(2, 1, payload=10))
    sim.run_until(1.0)
    assert len(rx_b.frames) == 2


def test_transmitting_radio_cannot_receive(sim, channel):
    a = Radio(sim, channel, 0)
    b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    rx_a = Collector(a)
    a.transmit(make_frame(0, 1, payload=100))
    b.transmit(make_frame(1, 0, payload=10))
    sim.run_until(1.0)
    assert rx_a.frames == []


def test_cca_busy_only_for_in_range_transmitters(sim, channel, line_radios):
    a, b, c = line_radios
    c.transmit(make_frame(2, 1, payload=100))
    # B hears C, A does not (hidden terminal).
    assert not b.cca()
    assert a.cca()
    sim.run_until(1.0)
    assert b.cca()  # channel idle again after the transmission ended


def test_cca_busy_while_self_transmitting(sim, channel):
    a = Radio(sim, channel, 0)
    a.transmit(make_frame(0, BROADCAST))
    assert not a.cca()


def test_link_error_rate_drops_frames(sim, channel):
    a = Radio(sim, channel, 0)
    b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    channel.set_link_error_rate(0, 1, 1.0)
    rx_b = Collector(b)
    a.transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert rx_b.frames == []
    assert channel.frames_lost_link_error == 1


def test_transmit_while_busy_raises(sim, channel):
    a = Radio(sim, channel, 0)
    a.transmit(make_frame(0, BROADCAST))
    with pytest.raises(RadioError):
        a.transmit(make_frame(0, BROADCAST))


def test_duplicate_radio_id_rejected(sim, channel):
    Radio(sim, channel, 0)
    with pytest.raises(ValueError):
        Radio(sim, channel, 0)


def test_tx_complete_listener_called(sim, channel):
    a = Radio(sim, channel, 0)
    completed = []
    a.tx_complete_listener = completed.append
    frame = make_frame(0, BROADCAST)
    airtime = a.transmit(frame)
    assert a.transmitting
    sim.run_until(airtime * 2)
    assert completed == [frame]
    assert not a.transmitting


def test_build_links_from_positions(sim):
    from repro.phy.propagation import UnitDiskPropagation

    channel = WirelessChannel(sim)
    Radio(sim, channel, 0, position=(0.0, 0.0))
    Radio(sim, channel, 1, position=(5.0, 0.0))
    Radio(sim, channel, 2, position=(100.0, 0.0))
    channel.build_links_from_positions(UnitDiskPropagation(10.0))
    assert channel.hears(1, 0) and channel.hears(0, 1)
    assert not channel.hears(2, 0)


def test_invalid_link_error_rate_rejected(sim, channel):
    Radio(sim, channel, 0)
    Radio(sim, channel, 1)
    with pytest.raises(ValueError):
        channel.set_link_error_rate(0, 1, 1.5)
