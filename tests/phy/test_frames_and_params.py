"""Unit tests for frame definitions and PHY parameters."""

from __future__ import annotations

import pytest

from repro.phy.frames import BROADCAST, DEFAULT_FRAME_SIZES, Frame, FrameKind
from repro.phy.params import PhyParameters


class TestFrame:
    def test_defaults_fill_origin_and_final_destination(self):
        frame = Frame(FrameKind.DATA, src=1, dst=2)
        assert frame.origin == 1
        assert frame.final_dst == 2
        assert frame.payload_bytes == DEFAULT_FRAME_SIZES[FrameKind.DATA]

    def test_broadcast_frames_do_not_require_ack(self):
        frame = Frame(FrameKind.ROUTE_DISCOVERY, src=1, dst=BROADCAST)
        assert frame.is_broadcast
        assert not frame.requires_ack

    def test_unicast_data_requires_ack_but_ack_does_not(self):
        data = Frame(FrameKind.DATA, src=1, dst=2)
        assert data.requires_ack
        ack = data.make_ack(src=2)
        assert ack.kind is FrameKind.ACK
        assert not ack.requires_ack
        assert ack.dst == 1
        assert ack.acknowledges(data)

    def test_ack_does_not_acknowledge_other_frames(self):
        a = Frame(FrameKind.DATA, src=1, dst=2)
        b = Frame(FrameKind.DATA, src=1, dst=2)
        ack = a.make_ack(src=2)
        assert not ack.acknowledges(b)

    def test_broadcast_cannot_be_acknowledged(self):
        frame = Frame(FrameKind.DATA, src=1, dst=BROADCAST)
        with pytest.raises(ValueError):
            frame.make_ack(src=2)

    def test_next_hop_copy_preserves_end_to_end_fields(self):
        frame = Frame(FrameKind.DATA, src=1, dst=2, final_dst=9, created_at=3.5)
        copy = frame.next_hop_copy(src=2, dst=5)
        assert copy.src == 2 and copy.dst == 5
        assert copy.origin == 1 and copy.final_dst == 9
        assert copy.created_at == 3.5
        assert copy.hops == 1
        assert copy.seq != frame.seq

    def test_unique_sequence_numbers(self):
        frames = [Frame(FrameKind.DATA, src=0, dst=1) for _ in range(10)]
        assert len({f.seq for f in frames}) == 10

    def test_gts_management_kinds(self):
        assert FrameKind.GTS_REQUEST.is_gts_management
        assert FrameKind.GTS_RESPONSE.is_gts_management
        assert FrameKind.GTS_NOTIFY.is_gts_management
        assert not FrameKind.DATA.is_gts_management

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=-1)


class TestPhyParameters:
    def test_standard_durations(self):
        phy = PhyParameters()
        assert phy.unit_backoff_period == pytest.approx(320e-6)
        assert phy.turnaround_time == pytest.approx(192e-6)
        assert phy.cca_duration == pytest.approx(128e-6)

    def test_frame_airtime_scales_with_payload(self):
        phy = PhyParameters()
        small = Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=10)
        large = Frame(FrameKind.DATA, src=0, dst=1, payload_bytes=100)
        assert phy.frame_airtime(large) > phy.frame_airtime(small)
        # 10 byte payload + 11 byte MAC header + 6 byte PHY header = 27 bytes.
        assert phy.frame_airtime(small) == pytest.approx(27 * 8 / 250_000)

    def test_ack_airtime_is_fixed(self):
        phy = PhyParameters()
        ack = Frame(FrameKind.DATA, src=0, dst=1).make_ack(src=1)
        assert phy.frame_airtime(ack) == pytest.approx(phy.ack_airtime())
        assert phy.ack_airtime() == pytest.approx(11 * 8 / 250_000)

    def test_transaction_time_includes_ack_wait_only_for_unicast(self):
        phy = PhyParameters()
        unicast = Frame(FrameKind.DATA, src=0, dst=1)
        broadcast = Frame(FrameKind.DATA, src=0, dst=BROADCAST)
        assert phy.transaction_time(unicast) > phy.frame_airtime(unicast)
        assert phy.transaction_time(broadcast) == pytest.approx(phy.frame_airtime(broadcast))
