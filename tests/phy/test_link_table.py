"""Tests for the channel's precomputed static link table.

The table is a pure acceleration: a static channel must deliver, collide
and drop frames exactly like the dynamic fallback, and any topology
mutation after the table's first use must demote the channel to the
dynamic path automatically.
"""

from __future__ import annotations

from repro.phy.channel import WirelessChannel
from repro.phy.frames import Frame, FrameKind
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


def make_frame(src, dst, payload=20):
    return Frame(FrameKind.DATA, src=src, dst=dst, payload_bytes=payload)


def _line_network(static_links):
    """A - B - C line (A and C hidden from each other)."""
    sim = Simulator(seed=7)
    channel = WirelessChannel(sim, static_links=static_links)
    radios = [Radio(sim, channel, i) for i in range(3)]
    channel.connect(0, 1)
    channel.connect(1, 2)
    return sim, channel, radios


def _exercise(sim, channel, radios):
    """A scripted mix of clean deliveries and hidden-node collisions."""
    a, b, c = radios
    sim.schedule(0.0, a.transmit, make_frame(0, 1))
    sim.schedule(0.0, c.transmit, make_frame(2, 1))  # collides at B
    sim.schedule(0.1, a.transmit, make_frame(0, 1))  # clean
    sim.schedule(0.2, b.transmit, make_frame(1, 0))  # clean, heard by A and C
    sim.run_until(1.0)
    return (
        channel.transmissions_started,
        channel.frames_delivered,
        channel.frames_corrupted,
        channel.frames_lost_link_error,
        [r.frames_received for r in radios],
        [r.frames_corrupted for r in radios],
    )


def test_static_table_matches_dynamic_fallback():
    static = _exercise(*_line_network(static_links=True))
    dynamic = _exercise(*_line_network(static_links=False))
    assert static == dynamic
    assert static[1] > 0 and static[2] > 0  # both regimes exercised


def test_static_channel_uses_table_and_dynamic_does_not():
    sim, channel, radios = _line_network(static_links=True)
    assert channel.static_links
    radios[0].transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert channel._link_table is not None

    sim2, channel2, radios2 = _line_network(static_links=False)
    radios2[0].transmit(make_frame(0, 1))
    sim2.run_until(1.0)
    assert not channel2.static_links
    assert channel2._link_table is None


def test_mutation_after_first_use_demotes_to_dynamic():
    sim, channel, radios = _line_network(static_links=True)
    radios[0].transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert channel.static_links
    channel.connect(0, 2)  # topology change after the table was built
    assert not channel.static_links
    assert channel._link_table is None
    # The new link is honoured by the dynamic path.
    before = radios[2].frames_received
    radios[0].transmit(make_frame(0, 2))
    sim.run_until(2.0)
    assert radios[2].frames_received == before + 1


def test_disconnect_mid_flight_frees_the_receivers_cca():
    """Regression: a frame on the air when its link is removed must not
    stay in the receiver's arriving list forever (CCA busy for the rest
    of the run)."""
    for static in (True, False):
        sim, channel, radios = _line_network(static_links=static)
        a, b, _ = radios
        a.transmit(make_frame(0, 1))
        channel.disconnect(0, 1)  # mid-flight: frame still on the air
        sim.run_until(1.0)
        assert b.cca(), f"CCA stuck busy (static_links={static})"
        assert not channel._arriving[1]


def test_demotion_mid_flight_matches_dynamic_from_start():
    """A mutation while a frame is on the air must leave the static and
    dynamic channels in agreement — in-flight transmissions finish on the
    dynamic path after demotion."""

    def run(static_links):
        sim, channel, radios = _line_network(static_links=static_links)
        a, b, c = radios
        a.transmit(make_frame(0, 1))
        channel.disconnect(0, 1)  # demotes the static channel mid-flight
        sim.run_until(1.0)
        a.transmit(make_frame(0, 1))  # link is gone: nobody hears this
        sim.run_until(2.0)
        return (channel.frames_delivered, b.frames_received, c.frames_received)

    assert run(True) == run(False)


def test_registering_a_radio_after_first_use_demotes():
    sim, channel, radios = _line_network(static_links=True)
    radios[0].transmit(make_frame(0, 1))
    sim.run_until(1.0)
    Radio(sim, channel, 99)
    assert not channel.static_links


def test_construction_time_wiring_keeps_static_mode():
    """connect/set_link_error_rate before the first transmission do not
    demote — the table simply has not been built yet."""
    sim = Simulator(seed=1)
    channel = WirelessChannel(sim, static_links=True)
    Radio(sim, channel, 0)
    Radio(sim, channel, 1)
    channel.connect(0, 1)
    channel.set_link_error_rate(0, 1, 0.0)
    assert channel.static_links
    channel.radio(0).transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert channel.static_links
    assert channel.frames_delivered == 1


def test_link_error_rate_applies_through_the_table():
    sim = Simulator(seed=3)
    channel = WirelessChannel(sim, static_links=True)
    a = Radio(sim, channel, 0)
    Radio(sim, channel, 1)
    channel.connect(0, 1)
    channel.set_link_error_rate(0, 1, 1.0)
    a.transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert channel.frames_lost_link_error == 1
    assert channel.frames_delivered == 0


def test_default_static_links_class_switch():
    sim = Simulator(seed=1)
    original = WirelessChannel.DEFAULT_STATIC_LINKS
    try:
        WirelessChannel.DEFAULT_STATIC_LINKS = False
        assert not WirelessChannel(sim).static_links
        WirelessChannel.DEFAULT_STATIC_LINKS = True
        assert WirelessChannel(Simulator(seed=1)).static_links
    finally:
        WirelessChannel.DEFAULT_STATIC_LINKS = original
