"""Unit tests for the propagation models."""

from __future__ import annotations

import pytest

from repro.phy.propagation import (
    LogDistancePathLoss,
    ShadowingPropagation,
    UnitDiskPropagation,
    distance,
)


def test_distance_euclidean():
    assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        distance((0.0, 0.0), (1.0, 2.0, 3.0))


class TestUnitDisk:
    def test_in_range_boundary(self):
        model = UnitDiskPropagation(10.0)
        assert model.in_range((0, 0), (10, 0))
        assert not model.in_range((0, 0), (10.01, 0))

    def test_link_quality_decreases_with_distance(self):
        model = UnitDiskPropagation(10.0)
        assert model.link_quality((0, 0), (1, 0)) > model.link_quality((0, 0), (9, 0))
        assert model.link_quality((0, 0), (20, 0)) == 0.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UnitDiskPropagation(0.0)


class TestLogDistance:
    def test_received_power_decreases_with_distance(self):
        model = LogDistancePathLoss(tx_power_dbm=0.0, sensitivity_dbm=-90.0)
        near = model.received_power_dbm((0, 0), (5, 0))
        far = model.received_power_dbm((0, 0), (50, 0))
        assert near > far

    def test_in_range_matches_max_range(self):
        model = LogDistancePathLoss(tx_power_dbm=0.0, sensitivity_dbm=-80.0)
        max_range = model.max_range()
        assert model.in_range((0, 0), (max_range * 0.99, 0))
        assert not model.in_range((0, 0), (max_range * 1.01, 0))

    def test_higher_tx_power_extends_range(self):
        low = LogDistancePathLoss(tx_power_dbm=-9.0, sensitivity_dbm=-72.0)
        high = LogDistancePathLoss(tx_power_dbm=3.0, sensitivity_dbm=-90.0)
        assert high.max_range() > low.max_range()

    def test_link_quality_bounds(self):
        model = LogDistancePathLoss(tx_power_dbm=0.0, sensitivity_dbm=-90.0)
        assert 0.0 <= model.link_quality((0, 0), (10, 0)) <= 1.0
        far = (model.max_range() * 2, 0)
        assert model.link_quality((0, 0), far) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance_m=0.0)


class TestCarrierSenseRange:
    def test_unit_disk_decoupled_ranges(self):
        model = UnitDiskPropagation(
            communication_range=100.0, carrier_sense_range=250.0
        )
        assert model.in_range((0, 0), (100, 0))
        assert not model.in_range((0, 0), (101, 0))
        assert model.in_carrier_sense_range((0, 0), (250, 0))
        assert not model.in_carrier_sense_range((0, 0), (251, 0))

    def test_unit_disk_default_collapses_to_communication_range(self):
        model = UnitDiskPropagation(100.0)
        assert model.in_carrier_sense_range((0, 0), (100, 0))
        assert not model.in_carrier_sense_range((0, 0), (100.01, 0))

    def test_carrier_sense_cannot_be_narrower_than_communication(self):
        with pytest.raises(ValueError):
            UnitDiskPropagation(communication_range=100.0, carrier_sense_range=50.0)

    def test_unit_disk_synthetic_power_monotone(self):
        model = UnitDiskPropagation(100.0)
        near = model.received_power_dbm((0, 0), (10, 0))
        far = model.received_power_dbm((0, 0), (90, 0))
        assert near > far

    def test_log_distance_cca_sensitivity_widens_sense_range(self):
        model = LogDistancePathLoss(
            tx_power_dbm=0.0, sensitivity_dbm=-80.0, cca_sensitivity_dbm=-90.0
        )
        comm = model.max_range()
        sense = model.carrier_sense_max_range()
        assert sense > comm
        between = ((comm + sense) / 2.0, 0.0)
        assert not model.in_range((0, 0), between)
        assert model.in_carrier_sense_range((0, 0), between)

    def test_log_distance_cca_sensitivity_must_be_at_most_sensitivity(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(sensitivity_dbm=-90.0, cca_sensitivity_dbm=-80.0)


class TestShadowingSymmetry:
    def test_shadowing_symmetric_across_directions(self):
        model = ShadowingPropagation(seed=5)
        pairs = [((0.0, 0.0), (30.0, 10.0)), ((12.5, -4.0), (-7.0, 22.0))]
        for a, b in pairs:
            assert model.shadowing_db(a, b) == model.shadowing_db(b, a)
            assert model.received_power_dbm(a, b) == pytest.approx(
                model.received_power_dbm(b, a)
            )

    def test_shadowing_symmetric_for_repr_differing_equal_positions(self):
        # Regression for the direction asymmetry: positions that compare
        # equal numerically but differ in repr (int vs float, -0.0 vs 0.0)
        # must still draw one shared value per unordered pair.
        model = ShadowingPropagation(seed=11)
        assert model.shadowing_db((0, 0), (30.0, 0.0)) == model.shadowing_db(
            (30.0, 0.0), (0, 0)
        )
        assert model.shadowing_db((-0.0, 5.0), (0.0, 5.0)) == model.shadowing_db(
            (0.0, 5.0), (-0.0, 5.0)
        )

    def test_shadowing_pure_function_of_seed_and_pair(self):
        a, b = (0.0, 0.0), (40.0, 0.0)
        first = ShadowingPropagation(seed=3).shadowing_db(a, b)
        fresh = ShadowingPropagation(seed=3)
        # Querying other pairs first must not perturb the draw.
        fresh.shadowing_db((1.0, 1.0), (2.0, 2.0))
        assert fresh.shadowing_db(b, a) == first
        assert ShadowingPropagation(seed=4).shadowing_db(a, b) != first
