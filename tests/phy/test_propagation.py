"""Unit tests for the propagation models."""

from __future__ import annotations

import pytest

from repro.phy.propagation import LogDistancePathLoss, UnitDiskPropagation, distance


def test_distance_euclidean():
    assert distance((0.0, 0.0), (3.0, 4.0)) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        distance((0.0, 0.0), (1.0, 2.0, 3.0))


class TestUnitDisk:
    def test_in_range_boundary(self):
        model = UnitDiskPropagation(10.0)
        assert model.in_range((0, 0), (10, 0))
        assert not model.in_range((0, 0), (10.01, 0))

    def test_link_quality_decreases_with_distance(self):
        model = UnitDiskPropagation(10.0)
        assert model.link_quality((0, 0), (1, 0)) > model.link_quality((0, 0), (9, 0))
        assert model.link_quality((0, 0), (20, 0)) == 0.0

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            UnitDiskPropagation(0.0)


class TestLogDistance:
    def test_received_power_decreases_with_distance(self):
        model = LogDistancePathLoss(tx_power_dbm=0.0, sensitivity_dbm=-90.0)
        near = model.received_power_dbm((0, 0), (5, 0))
        far = model.received_power_dbm((0, 0), (50, 0))
        assert near > far

    def test_in_range_matches_max_range(self):
        model = LogDistancePathLoss(tx_power_dbm=0.0, sensitivity_dbm=-80.0)
        max_range = model.max_range()
        assert model.in_range((0, 0), (max_range * 0.99, 0))
        assert not model.in_range((0, 0), (max_range * 1.01, 0))

    def test_higher_tx_power_extends_range(self):
        low = LogDistancePathLoss(tx_power_dbm=-9.0, sensitivity_dbm=-72.0)
        high = LogDistancePathLoss(tx_power_dbm=3.0, sensitivity_dbm=-90.0)
        assert high.max_range() > low.max_range()

    def test_link_quality_bounds(self):
        model = LogDistancePathLoss(tx_power_dbm=0.0, sensitivity_dbm=-90.0)
        assert 0.0 <= model.link_quality((0, 0), (10, 0)) <= 1.0
        far = (model.max_range() * 2, 0)
        assert model.link_quality((0, 0), far) == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            LogDistancePathLoss(path_loss_exponent=0.0)
        with pytest.raises(ValueError):
            LogDistancePathLoss(reference_distance_m=0.0)
