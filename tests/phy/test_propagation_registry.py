"""Tests for the propagation registry and the shadowing (fading) model."""

from __future__ import annotations

import pytest

from repro.phy.propagation import (
    LogDistancePathLoss,
    PropagationModel,
    ShadowingPropagation,
    UnitDiskPropagation,
)
from repro.phy.registry import (
    PROPAGATION_REGISTRY,
    RegistryError,
    create_propagation,
    get_propagation_spec,
    propagation_kinds,
    register_propagation,
)


class TestPropagationRegistry:
    def test_builtins_registered(self):
        assert propagation_kinds() == ("fading", "log-distance", "unit-disk")

    def test_create_by_name_with_params(self):
        model = create_propagation("unit-disk", communication_range=25.0)
        assert isinstance(model, UnitDiskPropagation)
        assert model.communication_range == 25.0
        assert isinstance(create_propagation("log-distance"), LogDistancePathLoss)
        assert isinstance(create_propagation("fading"), ShadowingPropagation)

    def test_unknown_model_raises(self):
        with pytest.raises(RegistryError, match="unit-disk"):
            create_propagation("free-space")

    def test_spec_defaults_and_seed_detection(self):
        spec = get_propagation_spec("fading")
        defaults = spec.config_defaults()
        assert defaults["shadowing_sigma_db"] == 4.0
        assert spec.accepts_seed()
        assert not get_propagation_spec("unit-disk").accepts_seed()

    def test_third_party_registration(self):
        @register_propagation("test-everywhere")
        class Everywhere(PropagationModel):
            def in_range(self, a, b):
                return True

        try:
            assert create_propagation("test-everywhere").in_range((0, 0), (1e9, 0))
        finally:
            PROPAGATION_REGISTRY._entries.pop("test-everywhere", None)


class TestShadowingPropagation:
    def test_shadowing_is_deterministic_and_symmetric(self):
        a, b = (0.0, 0.0), (70.0, 0.0)
        first = ShadowingPropagation(seed=5)
        second = ShadowingPropagation(seed=5)
        assert first.shadowing_db(a, b) == second.shadowing_db(a, b)
        assert first.shadowing_db(a, b) == first.shadowing_db(b, a)

    def test_different_seeds_draw_different_shadowing(self):
        a, b = (0.0, 0.0), (70.0, 0.0)
        draws = {ShadowingPropagation(seed=s).shadowing_db(a, b) for s in range(8)}
        assert len(draws) > 1

    def test_zero_sigma_reduces_to_log_distance(self):
        a, b = (0.0, 0.0), (42.0, 0.0)
        fading = ShadowingPropagation(shadowing_sigma_db=0.0)
        plain = LogDistancePathLoss()
        assert fading.received_power_dbm(a, b) == plain.received_power_dbm(a, b)
        assert fading.in_range(a, b) == plain.in_range(a, b)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            ShadowingPropagation(shadowing_sigma_db=-1.0)

    def test_shadowing_shifts_connectivity(self):
        # At ~84 m the plain model sits exactly at the sensitivity edge;
        # across many seeds shadowing must flip some links in and out.
        a, b = (0.0, 0.0), (83.0, 0.0)
        outcomes = {ShadowingPropagation(seed=s).in_range(a, b) for s in range(30)}
        assert outcomes == {True, False}

    def test_both_link_directions_share_one_cache_entry(self):
        model = ShadowingPropagation(seed=1)
        a, b = (0.0, 0.0), (10.0, 5.0)
        model.shadowing_db(a, b)
        model.shadowing_db(b, a)
        assert len(model._shadowing_cache) == 1
