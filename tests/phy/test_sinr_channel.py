"""Unit tests for the SINR/capture interference model of the channel."""

from __future__ import annotations

import pytest

from repro.phy.channel import (
    DEFAULT_SINR_THRESHOLD_DB,
    INTERFERENCE_MODELS,
    WirelessChannel,
)
from repro.phy.frames import Frame, FrameKind
from repro.phy.radio import Radio
from repro.sim.engine import Simulator


def make_frame(src, dst, payload=20):
    return Frame(FrameKind.DATA, src=src, dst=dst, payload_bytes=payload)


class Collector:
    def __init__(self, radio: Radio) -> None:
        self.frames = []
        self.corrupted = []
        radio.frame_listener = self.frames.append
        radio.corrupted_listener = self.corrupted.append


@pytest.fixture()
def sim() -> Simulator:
    return Simulator(seed=7)


def sinr_channel(sim, threshold_db=DEFAULT_SINR_THRESHOLD_DB, static=None):
    return WirelessChannel(
        sim, static_links=static, interference="sinr", sinr_threshold_db=threshold_db
    )


def test_unknown_interference_model_rejected(sim):
    assert "sinr" in INTERFERENCE_MODELS
    with pytest.raises(ValueError):
        WirelessChannel(sim, interference="nonsense")


def test_lone_strong_frame_is_delivered(sim):
    channel = sinr_channel(sim)
    a = Radio(sim, channel, 0)
    b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    channel.set_link_power(0, 1, -60.0)  # 40 dB over the -100 dBm noise floor
    rx = Collector(b)
    a.transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert len(rx.frames) == 1
    assert rx.corrupted == []


def test_lone_frame_below_noise_threshold_never_delivers(sim):
    channel = sinr_channel(sim, threshold_db=10.0)
    a = Radio(sim, channel, 0)
    b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    # SINR against the noise floor alone: -91 - (-100) = 9 dB < 10 dB.
    channel.set_link_power(0, 1, -91.0)
    rx = Collector(b)
    a.transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert rx.frames == []
    assert len(rx.corrupted) == 1  # synchronised on, then lost


def test_capture_strong_frame_survives_overlap(sim):
    """The collision model would destroy both frames; SINR captures one."""
    channel = sinr_channel(sim, threshold_db=10.0)
    strong = Radio(sim, channel, 0)
    weak = Radio(sim, channel, 1)
    receiver = Radio(sim, channel, 2)
    channel.connect(0, 2, bidirectional=False)
    channel.connect(1, 2, bidirectional=False)
    channel.set_link_power(0, 2, -50.0)  # 20 dB over the interferer
    channel.set_link_power(1, 2, -70.0)
    rx = Collector(receiver)
    strong_frame = make_frame(0, 2)
    strong.transmit(strong_frame)
    weak.transmit(make_frame(1, 2))
    sim.run_until(1.0)
    assert [f.seq for f in rx.frames] == [strong_frame.seq]
    assert len(rx.corrupted) == 1  # the weak frame


def test_late_strong_interferer_corrupts_frame_in_flight(sim):
    """Re-evaluation at interferer start: an already-flying frame dies."""
    channel = sinr_channel(sim, threshold_db=10.0)
    sender = Radio(sim, channel, 0)
    jammer = Radio(sim, channel, 1)
    receiver = Radio(sim, channel, 2)
    channel.connect(0, 2, bidirectional=False)
    channel.connect(1, 2, bidirectional=False)
    channel.set_link_power(0, 2, -70.0)
    channel.set_link_power(1, 2, -50.0)
    rx = Collector(receiver)
    sender.transmit(make_frame(0, 2))
    sim.schedule_at(0.0002, lambda: jammer.transmit(make_frame(1, 2)))
    sim.run_until(1.0)
    assert all(f.src != 0 for f in rx.frames)
    assert any(f.src == 0 for f in rx.corrupted)


def test_cumulative_interference_two_weak_interferers_add_up(sim):
    """Each interferer alone leaves >10 dB SIR; their sum does not."""
    channel = sinr_channel(sim, threshold_db=10.0)
    sender = Radio(sim, channel, 0)
    i1 = Radio(sim, channel, 1)
    i2 = Radio(sim, channel, 2)
    receiver = Radio(sim, channel, 3)
    for src in (0, 1, 2):
        channel.connect(src, 3, bidirectional=False)
    channel.set_link_power(0, 3, -60.0)
    # One interferer: SIR = 12 dB (survives); two: interference doubles
    # (+3 dB) -> SIR ~ 9 dB (lost).
    channel.set_link_power(1, 3, -72.0)
    channel.set_link_power(2, 3, -72.0)
    rx = Collector(receiver)
    sender.transmit(make_frame(0, 3))
    i1.transmit(make_frame(1, 3))
    sim.run_until(1.0)
    assert any(f.src == 0 for f in rx.frames)  # single interferer: captured

    sim2 = Simulator(seed=7)
    channel2 = sinr_channel(sim2)
    sender2 = Radio(sim2, channel2, 0)
    j1 = Radio(sim2, channel2, 1)
    j2 = Radio(sim2, channel2, 2)
    receiver2 = Radio(sim2, channel2, 3)
    for src in (0, 1, 2):
        channel2.connect(src, 3, bidirectional=False)
    channel2.set_link_power(0, 3, -60.0)
    channel2.set_link_power(1, 3, -72.0)
    channel2.set_link_power(2, 3, -72.0)
    rx2 = Collector(receiver2)
    sender2.transmit(make_frame(0, 3))
    j1.transmit(make_frame(1, 3))
    j2.transmit(make_frame(2, 3))
    sim2.run_until(1.0)
    assert all(f.src != 0 for f in rx2.frames)
    assert any(f.src == 0 for f in rx2.corrupted)


class TestSensedOnlyLinks:
    def test_sensed_transmission_drives_cca_busy(self, sim):
        channel = sinr_channel(sim)
        tx = Radio(sim, channel, 0)
        sensor = Radio(sim, channel, 1)
        channel.connect_sensed(0, 1, -85.0)
        assert sensor.cca() is True
        tx.transmit(make_frame(0, 99))
        assert sensor.cca() is False
        assert sensor.cca_sensed_only_count == 1
        assert channel.is_busy_for(1)
        sim.run_until(1.0)
        assert sensor.cca() is True

    def test_sensed_only_never_delivers_or_corrupts(self, sim):
        channel = sinr_channel(sim)
        tx = Radio(sim, channel, 0)
        sensor = Radio(sim, channel, 1)
        channel.connect_sensed(0, 1, -85.0)
        rx = Collector(sensor)
        tx.transmit(make_frame(0, 99))
        sim.run_until(1.0)
        assert rx.frames == []
        assert rx.corrupted == []
        assert sensor.frames_received == 0
        assert sensor.frames_corrupted == 0

    def test_sensed_energy_contributes_interference(self, sim):
        channel = sinr_channel(sim, threshold_db=10.0)
        sender = Radio(sim, channel, 0)
        hidden = Radio(sim, channel, 1)
        receiver = Radio(sim, channel, 2)
        channel.connect(0, 2, bidirectional=False)
        channel.set_link_power(0, 2, -60.0)
        # The hidden transmitter is sensed-only at the receiver but its
        # energy still drowns the frame: SIR = -60 - (-55) < threshold.
        channel.connect_sensed(1, 2, -55.0)
        rx = Collector(receiver)
        sender.transmit(make_frame(0, 2))
        hidden.transmit(make_frame(1, 99))
        sim.run_until(1.0)
        assert rx.frames == []
        assert len(rx.corrupted) == 1

    def test_disconnect_sensed_mid_flight_frees_cca(self, sim):
        """A sensed-only tx in flight must not strand the sensing entry
        and pin the receiver's CCA busy after the link is removed."""
        channel = sinr_channel(sim)
        tx = Radio(sim, channel, 0)
        sensor = Radio(sim, channel, 1)
        channel.connect_sensed(0, 1, -85.0)
        tx.transmit(make_frame(0, 99))
        assert sensor.cca() is False
        channel.disconnect_sensed(0, 1)
        assert sensor.cca() is True
        assert not channel.senses(1, 0)
        sim.run_until(1.0)  # the tx end must not blow up on the purged entry
        assert sensor.cca() is True

    def test_connect_sensed_rejects_existing_communication_link(self, sim):
        channel = sinr_channel(sim)
        Radio(sim, channel, 0)
        Radio(sim, channel, 1)
        channel.connect(0, 1)
        with pytest.raises(ValueError):
            channel.connect_sensed(0, 1, -80.0)


class TestStaticDynamicParity:
    def _run(self, static):
        sim = Simulator(seed=3)
        channel = sinr_channel(sim, static=static)
        radios = [Radio(sim, channel, i) for i in range(4)]
        for src in (0, 1, 2):
            channel.connect(src, 3, bidirectional=False)
        channel.set_link_power(0, 3, -60.0)
        channel.set_link_power(1, 3, -72.0)
        channel.set_link_power(2, 3, -72.0)
        channel.connect_sensed(1, 0, -85.0)
        rx = Collector(radios[3])
        radios[0].transmit(make_frame(0, 3))
        sim.schedule_at(0.0003, lambda: radios[1].transmit(make_frame(1, 3)))
        sim.schedule_at(0.0004, lambda: radios[2].transmit(make_frame(2, 3)))
        sim.run_until(1.0)
        return (
            [f.src for f in rx.frames],
            [f.src for f in rx.corrupted],
            channel.frames_delivered,
            channel.frames_corrupted,
            radios[0].cca_sensed_only_count,
        )

    def test_static_table_matches_dynamic_path(self):
        assert self._run(static=True) == self._run(static=False)


def test_collision_channel_keeps_sensing_lists_empty(sim):
    """The collision model must never touch the SINR book-keeping."""
    channel = WirelessChannel(sim)  # default interference="collision"
    a = Radio(sim, channel, 0)
    b = Radio(sim, channel, 1)
    channel.connect(0, 1)
    a.transmit(make_frame(0, 1))
    sim.run_until(1.0)
    assert b._rx_sensing == []
    assert b.cca_sensed_only_count == 0
