"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.markov import expected_handshake_messages
from repro.analysis.stats import confidence_interval_95, rolling_average
from repro.core.actions import ALL_ACTIONS, QAction
from repro.core.exploration import ParameterBasedExploration
from repro.core.qtable import QTable
from repro.core.rewards import global_reward, local_reward
from repro.mac.gate import WindowedGate
from repro.mac.queue import PacketQueue
from repro.phy.frames import Frame, FrameKind
from repro.sim.engine import Simulator

actions_strategy = st.lists(st.sampled_from(ALL_ACTIONS), min_size=1, max_size=6)


@given(actions_strategy)
def test_global_reward_is_sum_of_local_rewards(actions):
    total = sum(local_reward(actions, i) for i in range(len(actions)))
    assert global_reward(actions) == total


@given(actions_strategy)
def test_reward_sign_reflects_transmission_outcome(actions):
    """Exactly one transmitter => positive global reward; collisions => negative."""
    any_send = any(a is QAction.QSEND for a in actions)
    transmitters = [
        a for a in actions
        if a is QAction.QSEND or (a is QAction.QCCA and not any_send)
    ]
    total = global_reward(actions)
    if len(transmitters) == 1:
        assert total > 0
    elif len(transmitters) > 1:
        assert total < 0
    else:
        assert total == 0


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),                 # state
            st.sampled_from(ALL_ACTIONS),                          # action
            st.floats(min_value=-5, max_value=5),                  # reward
            st.integers(min_value=0, max_value=7),                 # next state
        ),
        max_size=60,
    )
)
@settings(max_examples=50)
def test_qtable_policy_always_within_penalty_of_best_action(updates):
    """Invariant of Eq. 3 + Eq. 5: the policy action's Q-value is never worse
    than the best Q-value of its subslot (they are equal right after the
    policy switches and can only drift while no better value is found)."""
    table = QTable(num_states=8, learning_rate=0.5, discount_factor=0.9, penalty=2.0)
    for state, action, reward, next_state in updates:
        table.update(state, action, reward, next_state)
    for state in range(8):
        policy_value = table.value(state, table.policy(state))
        assert table.max_value(state) >= policy_value
    # Cumulative policy value is consistent with the per-state values.
    assert table.cumulative_policy_value() == sum(
        table.value(m, table.policy(m)) for m in range(8)
    )


@given(
    st.floats(min_value=-20, max_value=20),
    st.floats(min_value=-10, max_value=10),
    st.integers(min_value=0, max_value=3),
    st.integers(min_value=0, max_value=3),
)
def test_qtable_update_never_drops_more_than_penalty(initial, reward, state, next_state):
    table = QTable(num_states=4, penalty=2.0, q_init=-10.0)
    table.set_value(state, QAction.QSEND, initial)
    table.update(state, QAction.QSEND, reward, next_state)
    assert table.value(state, QAction.QSEND) >= initial - 2.0


@given(st.integers(min_value=-20, max_value=20), st.floats(min_value=0, max_value=8))
def test_exploration_probability_is_a_probability(local_level, neighbour_avg):
    strategy = ParameterBasedExploration()
    rho = strategy.probability(max(local_level, 0), neighbour_avg, now=0.0)
    assert 0.0 <= rho <= 0.3


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=50))
def test_confidence_interval_contains_mean_structure(values):
    m, half = confidence_interval_95(values)
    assert half >= 0.0
    if values:
        assert min(values) - 1e-9 <= m <= max(values) + 1e-9
    else:
        assert m == 0.0


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=40),
    st.integers(min_value=1, max_value=10),
)
def test_rolling_average_stays_within_bounds(values, window):
    smoothed = rolling_average(values, window)
    assert len(smoothed) == len(values)
    assert all(min(values) - 1e-9 <= v <= max(values) + 1e-9 for v in smoothed)


@given(st.floats(min_value=0.05, max_value=1.0), st.integers(min_value=0, max_value=5))
@settings(max_examples=40)
def test_handshake_needs_at_least_three_messages(p, retries):
    assert expected_handshake_messages(p, retries) >= 3.0 - 1e-9


@given(st.lists(st.booleans(), min_size=1, max_size=60), st.integers(min_value=1, max_value=8))
def test_packet_queue_never_exceeds_capacity(operations, capacity):
    sim = Simulator()
    queue = PacketQueue(sim, capacity=capacity)
    pushed = popped = 0
    for push in operations:
        if push:
            if queue.push(Frame(FrameKind.DATA, src=0, dst=1)):
                pushed += 1
        else:
            if queue.pop() is not None:
                popped += 1
        assert 0 <= queue.level <= capacity
    assert queue.level == pushed - popped


@given(
    st.floats(min_value=0.01, max_value=10.0),
    st.floats(min_value=0.001, max_value=1.0),
    st.floats(min_value=0.0, max_value=5.0),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_windowed_gate_next_active_time_is_consistent(period, window_fraction, offset, now):
    """next_active_time always returns a time >= now at which the gate is active."""
    window = max(period * window_fraction, 1e-6)
    gate = WindowedGate(period=period, window=min(window, period), offset=offset)
    resume = gate.next_active_time(now)
    assert resume >= now - 1e-12
    assert gate.active(resume)
    if gate.active(now):
        assert resume == now
