"""Tests for the configuration-keyed construction cache.

The cache's contract has three parts, each pinned here:

* the **cache key** covers exactly the construction-relevant half of a
  :class:`ScenarioConfig` — seed excluded, except where the seed feeds
  construction (seeded topology placement, unpinned seeded propagation);
* **artifact reuse is invisible**: assembled simulations are bit-identical
  with and without the cache, under LRU eviction, and under explicit
  artifact bundles;
* **staleness is never served**: a topology mutated between runs of a
  shared (unfrozen) bundle invalidates the prebuilt link-table skeleton —
  the cross-run analogue of the channel's mutation auto-demote.
"""

from __future__ import annotations

import pytest

from repro.scenario import (
    ARTIFACT_CACHE,
    ScenarioArtifacts,
    ScenarioBuilder,
    ScenarioConfig,
    link_table_skeleton,
    topology_accepts_seed,
)
from repro.topology.base import FrozenTopologyError
from repro.topology.hidden_node import NODE_A, NODE_B, NODE_C, hidden_node_topology


@pytest.fixture(autouse=True)
def _clean_cache():
    """Each test starts from an empty cache with default settings."""
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def _rows(network):
    """The channel's delivery table reduced to comparable (id, per) rows."""
    table = network.channel._build_link_table()
    return {
        sender: tuple((receiver, per) for receiver, _, _, per, _ in rows)
        for sender, rows in table.items()
    }


class TestCacheKey:
    def test_seed_excluded_for_deterministic_construction(self):
        a = ScenarioConfig(topology="hidden-node", seed=0)
        b = ScenarioConfig(topology="hidden-node", seed=123)
        assert a.cache_key() == b.cache_key() is not None

    def test_mac_and_trace_excluded(self):
        a = ScenarioConfig(mac="qma", trace=True, seed=0)
        b = ScenarioConfig(mac="unslotted-csma", mac_params={"x": 1}, seed=5)
        b.mac_params = {}  # mac_params never reach construction either
        assert a.cache_key() == b.cache_key()

    def test_topology_params_and_link_error_rate_included(self):
        base = ScenarioConfig(topology="hidden-node")
        narrow = ScenarioConfig(
            topology="hidden-node", topology_params={"link_distance": 45.0}
        )
        lossy = ScenarioConfig(topology="hidden-node", link_error_rate=0.1)
        assert base.cache_key() != narrow.cache_key()
        assert base.cache_key() != lossy.cache_key()

    def test_unpinned_seeded_propagation_keys_per_seed(self):
        a = ScenarioConfig(topology="iotlab-star", propagation="fading", seed=0)
        b = ScenarioConfig(topology="iotlab-star", propagation="fading", seed=1)
        assert a.cache_key() != b.cache_key()

    def test_pinned_propagation_seed_shares_key_across_seeds(self):
        a = ScenarioConfig(
            topology="iotlab-star", propagation="fading",
            propagation_params={"seed": 7}, seed=0,
        )
        b = ScenarioConfig(
            topology="iotlab-star", propagation="fading",
            propagation_params={"seed": 7}, seed=1,
        )
        assert a.cache_key() == b.cache_key()

    def test_seeded_topology_keys_per_seed_unless_pinned(self):
        assert topology_accepts_seed("random")
        assert not topology_accepts_seed("hidden-node")
        a = ScenarioConfig(topology="random", topology_params={"num_nodes": 6}, seed=0)
        b = ScenarioConfig(topology="random", topology_params={"num_nodes": 6}, seed=1)
        assert a.cache_key() != b.cache_key()
        pinned = {"num_nodes": 6, "seed": 3}
        c = ScenarioConfig(topology="random", topology_params=pinned, seed=0)
        d = ScenarioConfig(topology="random", topology_params=pinned, seed=1)
        assert c.cache_key() == d.cache_key()

    def test_unhashable_params_are_uncacheable(self):
        config = ScenarioConfig(
            topology="hidden-node", topology_params={"blob": bytearray(b"x")}
        )
        assert config.cache_key() is None

    def test_nested_param_values_normalised(self):
        a = ScenarioConfig(propagation="fading", propagation_params={"seed": 1}, seed=0)
        b = ScenarioConfig(propagation="fading", propagation_params={"seed": 1}, seed=9)
        assert a.cache_key() == b.cache_key()


_SINR_PARAMS = {"communication_range": 100.0, "carrier_sense_range": 250.0}


class TestInterferenceCacheKey:
    """Regression (PR 6): the cache key must cover the interference model,
    SINR threshold and carrier-sense range — a collision-model bundle served
    to a SINR config (or vice versa) would silently drop the power column
    and sensed-only links."""

    def test_interference_model_splits_key(self):
        collision = ScenarioConfig(propagation="unit-disk", propagation_params=_SINR_PARAMS)
        sinr = ScenarioConfig(
            propagation="unit-disk", propagation_params=_SINR_PARAMS, interference="sinr"
        )
        assert collision.cache_key() != sinr.cache_key()

    def test_sinr_threshold_splits_key(self):
        a = ScenarioConfig(
            propagation="unit-disk", propagation_params=_SINR_PARAMS,
            interference="sinr", sinr_threshold_db=10.0,
        )
        b = ScenarioConfig(
            propagation="unit-disk", propagation_params=_SINR_PARAMS,
            interference="sinr", sinr_threshold_db=3.0,
        )
        assert a.cache_key() != b.cache_key()

    def test_carrier_sense_range_splits_key(self):
        a = ScenarioConfig(
            propagation="unit-disk", propagation_params=_SINR_PARAMS, interference="sinr"
        )
        b = ScenarioConfig(
            propagation="unit-disk",
            propagation_params={"communication_range": 100.0, "carrier_sense_range": 150.0},
            interference="sinr",
        )
        assert a.cache_key() != b.cache_key()

    def test_sinr_requires_propagation(self):
        with pytest.raises(ValueError, match="propagation"):
            ScenarioConfig(interference="sinr")
        with pytest.raises(ValueError):
            ScenarioConfig(interference="not-a-model")

    def test_forced_eviction_keeps_sinr_and_collision_results_correct(self):
        """Alternating collision and SINR builds through a single-slot LRU
        must reproduce the uncached channel state bit-for-bit."""

        def full_rows(network):
            table = network.channel._build_link_table()
            return {
                sender: tuple(
                    (receiver, per, signal)
                    for receiver, _, _, per, signal in rows
                )
                for sender, rows in table.items()
            }

        def sensed(network):
            return {
                node: tuple(sorted(peers))
                for node, peers in network.channel._cs_neighbours.items()
            }

        configs = [
            ScenarioConfig(propagation="unit-disk", propagation_params=_SINR_PARAMS),
            ScenarioConfig(
                propagation="unit-disk", propagation_params=_SINR_PARAMS,
                interference="sinr",
            ),
        ]
        with ARTIFACT_CACHE.override(maxsize=1):
            baselines = []
            with ARTIFACT_CACHE.override(enabled=False):
                for config in configs:
                    network = ScenarioBuilder(config).build().network
                    baselines.append((full_rows(network), sensed(network)))
            # The collision baseline has no power column or sensed links.
            assert all(s == 0.0 for rows in baselines[0][0].values() for _, _, s in rows)
            assert baselines[0][1] == {}
            assert any(s > 0.0 for rows in baselines[1][0].values() for _, _, s in rows)
            for _ in range(3):  # alternate so each build evicts the other
                for config, baseline in zip(configs, baselines):
                    network = ScenarioBuilder(config).build().network
                    assert (full_rows(network), sensed(network)) == baseline
        assert ARTIFACT_CACHE.stats()["evictions"] >= 4


class TestSeededTopologyBuilds:
    def test_scenario_seed_drives_placement(self):
        def positions(seed):
            config = ScenarioConfig(
                topology="random", topology_params={"num_nodes": 6}, seed=seed
            )
            return dict(ScenarioBuilder(config).build().topology.positions)

        assert positions(0) == positions(0)
        assert positions(0) != positions(1)

    def test_pinned_placement_seed_wins_over_scenario_seed(self):
        def positions(seed):
            config = ScenarioConfig(
                topology="random",
                topology_params={"num_nodes": 6, "seed": 42},
                seed=seed,
            )
            return dict(ScenarioBuilder(config).build().topology.positions)

        assert positions(0) == positions(17)


class TestArtifactReuse:
    def test_cached_build_reuses_topology_and_hits(self):
        config = ScenarioConfig(topology="hidden-node", mac="unslotted-csma")
        first = ScenarioBuilder(config).build()
        second = ScenarioBuilder(config).build()
        assert first.topology is second.topology
        assert first.topology.frozen
        stats = ARTIFACT_CACHE.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_cache_disabled_builds_fresh_mutable_topology(self):
        config = ScenarioConfig(topology="hidden-node")
        with ARTIFACT_CACHE.override(enabled=False):
            first = ScenarioBuilder(config).build()
            second = ScenarioBuilder(config).build()
        assert first.topology is not second.topology
        assert not first.topology.frozen

    @pytest.mark.parametrize("topology", sorted(["hidden-node", "iotlab-tree",
                                                 "iotlab-star", "concentric", "random"]))
    @pytest.mark.parametrize("propagation", [None, "fading"])
    def test_prebuilt_rows_match_lazily_derived_rows(self, topology, propagation):
        """The skeleton's receiver order IS the channel's wiring order.

        This is the load-bearing contract behind bit-identical cached
        runs: ``link_table_skeleton`` replays the exact neighbour-set
        insertion sequence of ``Network``'s wiring loop.  Pinned here for
        every registered topology (and a propagation-derived link set) so
        any reorder in either place fails loudly instead of silently
        changing delivery order.
        """
        params = {"random": {"num_nodes": 7}, "concentric": {"rings": 1}}.get(topology, {})
        config = ScenarioConfig(
            topology=topology,
            topology_params=params,
            mac="unslotted-csma",
            propagation=propagation,
            link_error_rate=0.02,
        )
        with ARTIFACT_CACHE.override(enabled=False):
            plain = ScenarioBuilder(config).build()
        cached = ScenarioBuilder(config).build()
        assert cached.network.channel._skeleton is not None
        assert _rows(plain.network) == _rows(cached.network)

    def test_explicit_artifacts_for_other_config_rejected(self):
        narrow = ScenarioConfig(
            topology="hidden-node", topology_params={"link_distance": 45.0}
        )
        wide = ScenarioConfig(topology="hidden-node")
        artifacts = ScenarioBuilder(narrow).build_artifacts()
        with pytest.raises(ValueError, match="different scenario"):
            ScenarioBuilder(wide).build(artifacts=artifacts)

    def test_uncacheable_bundle_still_guards_topology_kind(self):
        """key=None (uncacheable config) must not bypass cross-config reuse
        detection: the recorded topology kind still catches the mismatch."""
        uncacheable = ScenarioConfig(
            topology="iotlab-star", propagation_params={"note": bytearray(b"x")}
        )
        artifacts = ScenarioBuilder(uncacheable).build_artifacts()
        assert artifacts.key is None
        other = ScenarioConfig(topology="hidden-node")
        with pytest.raises(ValueError, match="built for topology"):
            ScenarioBuilder(other).build(artifacts=artifacts)

    def test_lru_eviction_keeps_results_correct(self):
        configs = [
            ScenarioConfig(topology="hidden-node"),
            ScenarioConfig(topology="hidden-node", topology_params={"link_distance": 45.0}),
        ]
        with ARTIFACT_CACHE.override(maxsize=1):
            baselines = []
            with ARTIFACT_CACHE.override(enabled=False):
                for config in configs:
                    baselines.append(_rows(ScenarioBuilder(config).build().network))
            for _ in range(3):  # alternate so each build evicts the other
                for config, baseline in zip(configs, baselines):
                    built = ScenarioBuilder(config).build()
                    assert _rows(built.network) == baseline
        assert ARTIFACT_CACHE.stats()["evictions"] >= 4

    def test_override_restores_settings(self):
        enabled, maxsize = ARTIFACT_CACHE.enabled, ARTIFACT_CACHE.maxsize
        with ARTIFACT_CACHE.override(enabled=False, maxsize=1):
            assert not ARTIFACT_CACHE.enabled and ARTIFACT_CACHE.maxsize == 1
        assert ARTIFACT_CACHE.enabled == enabled
        assert ARTIFACT_CACHE.maxsize == maxsize


class TestFrozenTopology:
    def test_mutators_raise_once_frozen(self):
        topology = hidden_node_topology()
        topology.freeze()
        with pytest.raises(FrozenTopologyError):
            topology.add_link(NODE_A, NODE_C)
        with pytest.raises(FrozenTopologyError):
            topology.build_routing_tree(NODE_B)

    def test_version_counts_mutations(self):
        topology = hidden_node_topology()
        before = topology.version
        topology.add_link(NODE_A, NODE_C)
        assert topology.version == before + 1

    def test_frozen_topologies_hash_by_content(self):
        a = hidden_node_topology().freeze()
        b = hidden_node_topology().freeze()
        assert a == b
        assert hash(a) == hash(b)
        assert {a: "x"}[b] == "x"

    def test_cached_artifact_topology_cannot_go_stale(self):
        config = ScenarioConfig(topology="hidden-node")
        built = ScenarioBuilder(config).build()
        with pytest.raises(FrozenTopologyError):
            built.topology.add_link(NODE_A, NODE_C)


class TestCrossRunMutation:
    """Regression: a topology mutated *between* runs of a shared artifact
    bundle must invalidate the prebuilt link-table skeleton — the next run
    derives delivery rows from the live wiring instead of stale rows."""

    def test_mutation_between_runs_invalidates_stale_skeleton(self):
        config = ScenarioConfig(topology="hidden-node", mac="unslotted-csma")
        builder = ScenarioBuilder(config)
        artifacts = builder.build_artifacts(freeze=False)

        first = builder.build(artifacts=artifacts)
        assert (NODE_C, 0.0) not in _rows(first.network)[NODE_A]  # A–C hidden

        # Mutate the shared topology between runs: A and C are now in range.
        artifacts.topology.add_link(NODE_A, NODE_C)
        assert not artifacts.is_current()
        assert artifacts.current_link_table() is None

        second = builder.build(artifacts=artifacts)
        rows = _rows(second.network)
        assert (NODE_C, 0.0) in rows[NODE_A]
        assert (NODE_A, 0.0) in rows[NODE_C]
        # ... and matches a bundle freshly derived from the mutated topology.
        fresh = ScenarioArtifacts(
            key=None,
            topology=artifacts.topology,
            topology_version=artifacts.topology.version,
            link_table=link_table_skeleton(artifacts.topology, 0.0),
        )
        reference = builder.build(artifacts=fresh)
        assert rows == _rows(reference.network)

    def test_stale_cache_entries_rebuild(self):
        """A stale *cached* bundle (unfrozen topology mutated behind the
        cache's back) is dropped and rebuilt, never served."""
        config = ScenarioConfig(topology="hidden-node")
        artifacts = ScenarioBuilder(config).build_artifacts(freeze=False)
        ARTIFACT_CACHE.put(config.cache_key(), artifacts)
        artifacts.topology.add_link(NODE_A, NODE_C)
        rebuilt = ScenarioBuilder(config).build()
        assert rebuilt.topology is not artifacts.topology
        assert not rebuilt.topology.connected(NODE_A, NODE_C)
