"""Tests for the declarative scenario pipeline (config + builder)."""

from __future__ import annotations

import pytest

from repro.core.mac import QmaMac
from repro.mac.tdma import Tdma, TdmaConfig
from repro.scenario.builder import (
    ScenarioBuilder,
    TOPOLOGY_REGISTRY,
    build_scenario,
    topology_kinds,
)
from repro.scenario.config import ScenarioConfig
from repro.topology.hidden_node import NODE_A, NODE_B, NODE_C


class TestScenarioConfig:
    def test_defaults(self):
        config = ScenarioConfig()
        assert config.topology == "hidden-node"
        assert config.mac == "qma"
        assert config.propagation is None

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            ScenarioConfig(mac="not-a-mac")
        with pytest.raises(ValueError):
            ScenarioConfig(propagation="not-a-model")
        with pytest.raises(ValueError):
            ScenarioConfig(link_error_rate=1.5)


class TestTopologyRegistry:
    def test_all_paper_topologies_registered(self):
        assert set(topology_kinds()) == {
            "hidden-node",
            "sinr-hidden-node",
            "iotlab-tree",
            "iotlab-star",
            "concentric",
            "random",
        }

    def test_factories_accept_params(self):
        topology = TOPOLOGY_REGISTRY.get("concentric")(rings=1)
        assert topology.num_nodes == 7


class TestScenarioBuilder:
    def test_builds_network_with_requested_mac(self):
        built = build_scenario(
            ScenarioConfig(mac="tdma", mac_config=TdmaConfig(slots_per_frame=5))
        )
        assert set(built.network.nodes) == {NODE_A, NODE_B, NODE_C}
        for mac in built.network.macs.values():
            assert isinstance(mac, Tdma)
            assert mac.config.slots_per_frame == 5

    def test_qma_exploration_factory_not_shared_between_nodes(self):
        calls = []

        def fresh():
            from repro.core.exploration import ParameterBasedExploration
            from repro.core.config import QmaConfig

            strategy = ParameterBasedExploration(QmaConfig().exploration_table)
            calls.append(strategy)
            return strategy

        built = build_scenario(
            ScenarioConfig(mac="qma", mac_params={"exploration": fresh})
        )
        assert len(calls) == built.topology.num_nodes
        explorations = {id(mac.exploration) for mac in built.network.macs.values()}
        assert len(explorations) == built.topology.num_nodes
        assert all(isinstance(mac, QmaMac) for mac in built.network.macs.values())

    def test_propagation_rederives_links_and_routing(self):
        # With a unit-disk range covering only adjacent nodes the links
        # match the explicit hidden-node topology.
        built = build_scenario(
            ScenarioConfig(
                propagation="unit-disk",
                propagation_params={"communication_range": 60.0},
            )
        )
        assert built.topology.connected(NODE_A, NODE_B)
        assert built.topology.connected(NODE_B, NODE_C)
        assert not built.topology.connected(NODE_A, NODE_C)
        assert built.topology.parent(NODE_A) == NODE_B

        # A range covering everything bridges the hidden pair.
        wide = build_scenario(
            ScenarioConfig(
                propagation="unit-disk",
                propagation_params={"communication_range": 150.0},
            )
        )
        assert wide.topology.connected(NODE_A, NODE_C)

    def test_fading_model_receives_scenario_seed(self):
        config = ScenarioConfig(propagation="fading", seed=17)
        model = ScenarioBuilder(config).make_propagation()
        assert model.seed == 17
        # An explicit seed in propagation_params wins.
        override = ScenarioConfig(
            propagation="fading", seed=17, propagation_params={"seed": 3}
        )
        assert ScenarioBuilder(override).make_propagation().seed == 3

    def test_disconnecting_shadowing_draw_is_resampled(self):
        # Seed 1's first shadowing draw removes a sink link of the
        # hidden-node topology; the builder redraws deterministically until
        # the sink is reachable (the usual topology-construction procedure).
        built = build_scenario(ScenarioConfig(propagation="fading", seed=1))
        assert built.topology.parent(NODE_A) is not None
        again = build_scenario(ScenarioConfig(propagation="fading", seed=1))
        assert built.topology.links == again.topology.links

    def test_disconnecting_pinned_seed_raises(self):
        # A seed pinned in propagation_params is honoured verbatim: a
        # disconnecting draw raises instead of silently resampling.
        with pytest.raises(ValueError, match="disconnected"):
            build_scenario(
                ScenarioConfig(propagation="fading", propagation_params={"seed": 1})
            )

    def test_link_error_rate_applied(self):
        built = build_scenario(ScenarioConfig(link_error_rate=0.25))
        assert built.network.channel._link_error[(NODE_A, NODE_B)] == 0.25

    def test_build_dsme_uses_configured_cap_mac(self):
        config = ScenarioConfig(
            topology="concentric", topology_params={"rings": 1}, mac="tdma"
        )
        built = ScenarioBuilder(config).build_dsme()
        assert built.dsme.cap_mac == "tdma"
        assert built.network is built.dsme.network
        assert all(isinstance(mac, Tdma) for mac in built.network.macs.values())

    def test_same_config_same_seed_is_bit_identical(self):
        def pdr():
            built = build_scenario(ScenarioConfig(mac="qma", seed=9))
            sources = (NODE_A, NODE_C)
            for node_id in sources:
                generator = built.poisson_source(
                    node_id, rate=20.0, start_time=0.0, rng_name=f"t-{node_id}",
                    max_packets=20,
                )
                built.network.node(node_id).attach_traffic(generator)
            built.network.start()
            built.sim.run_until(5.0)
            return built.network.packet_delivery_ratio(sources)

        assert pdr() == pdr()
