"""Dispatch backends: pool subset execution, shard merge equality, factory."""

from __future__ import annotations

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service.backends import (
    PoolBackend,
    ShardBackend,
    ShardFailure,
    make_backend,
)
from repro.service.journal import CheckpointJournal
from repro.service.shard_worker import main as shard_worker_main

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def make_sweep(seeds=3):
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed=FIXED,
        seeds=list(range(seeds)),
    )


def reference_records(sweep):
    with CampaignRunner() as runner:
        return [record.to_dict() for record in runner.run(sweep).records]


def run_via(backend, sweep, tmp_path, indices=None):
    journal = CheckpointJournal.create(str(tmp_path / "b.jsonl"), sweep)
    try:
        backend.run(
            sweep,
            list(range(sweep.size)) if indices is None else indices,
            journal,
        )
        return {index: record.to_dict() for index, record in journal.iter_completed()}
    finally:
        journal.close()
        backend.close()


class TestPoolBackend:
    def test_full_run_matches_reference(self, tmp_path):
        sweep = make_sweep()
        merged = run_via(PoolBackend(), sweep, tmp_path)
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)

    def test_subset_matches_reference_slice(self, tmp_path):
        sweep = make_sweep()
        expected = reference_records(sweep)
        subset = [1, 3, 4]
        merged = run_via(PoolBackend(jobs=2), sweep, tmp_path, indices=subset)
        assert sorted(merged) == subset
        for index in subset:
            assert merged[index] == expected[index]

    def test_empty_pending_is_noop(self, tmp_path):
        sweep = make_sweep()
        assert run_via(PoolBackend(), sweep, tmp_path, indices=[]) == {}

    def test_on_record_fires_per_completion(self, tmp_path):
        sweep = make_sweep(seeds=1)
        seen = []
        journal = CheckpointJournal.create(str(tmp_path / "b.jsonl"), sweep)
        backend = PoolBackend()
        try:
            backend.run(
                sweep,
                list(range(sweep.size)),
                journal,
                on_record=lambda index, record: seen.append(index),
            )
        finally:
            journal.close()
            backend.close()
        assert seen == list(range(sweep.size))


class TestShardBackend:
    def test_merge_equals_reference(self, tmp_path):
        """Subprocess shards merge bit-identically to a serial in-process run."""
        sweep = make_sweep()
        merged = run_via(ShardBackend(shards=2), sweep, tmp_path)
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)

    def test_more_shards_than_runs(self, tmp_path):
        sweep = make_sweep(seeds=1)  # 2 runs, 4 shards requested
        merged = run_via(ShardBackend(shards=4), sweep, tmp_path)
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)

    def test_shard_failure_surfaces_stderr(self, tmp_path):
        sweep = make_sweep(seeds=1)
        backend = ShardBackend(shards=1, python="/nonexistent/python")
        journal = CheckpointJournal.create(str(tmp_path / "b.jsonl"), sweep)
        try:
            with pytest.raises((ShardFailure, OSError)):
                backend.run(sweep, list(range(sweep.size)), journal)
        finally:
            journal.close()
            backend.close()

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            ShardBackend(shards=0)


class TestShardWorker:
    def test_usage_error(self, capsys):
        assert shard_worker_main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_worker_resumes_own_journal(self, tmp_path):
        """Re-running a shard worker job skips already-journalled runs."""
        import json

        sweep = make_sweep(seeds=1)
        journal_path = str(tmp_path / "shard.jsonl")
        job_path = str(tmp_path / "job.json")
        with open(job_path, "w") as handle:
            json.dump(
                {
                    "sweep": sweep.to_dict(),
                    "indices": list(range(sweep.size)),
                    "journal": journal_path,
                    "shard": {"index": 0, "of": 1},
                    "options": {"jobs": 1},
                },
                handle,
            )
        assert shard_worker_main([job_path]) == 0
        first = CheckpointJournal.open(journal_path)
        completed = {i: r.to_dict() for i, r in first.iter_completed()}
        first.close()
        assert sorted(completed) == list(range(sweep.size))
        # Second invocation must be a no-op resume, not a duplicate append.
        assert shard_worker_main([job_path]) == 0
        second = CheckpointJournal.open(journal_path)
        assert {i: r.to_dict() for i, r in second.iter_completed()} == completed
        assert len(second) == sweep.size
        second.close()


class TestMakeBackend:
    def test_default_is_pool(self):
        backend = make_backend()
        assert isinstance(backend, PoolBackend)
        backend.close()

    def test_shard_kind(self):
        backend = make_backend({"backend": "shard", "shards": 3})
        assert isinstance(backend, ShardBackend)
        assert backend.shards == 3
        backend.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            make_backend({"backend": "teleport"})

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown option"):
            make_backend({"backend": "pool", "sharding": 2})

    def test_pool_options_forwarded(self):
        backend = make_backend({"jobs": 2, "batch_seeds": 4, "throttle": 0.5})
        assert backend.throttle == 0.5
        backend.close()
