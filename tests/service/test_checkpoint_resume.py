"""Kill-and-resume determinism: interrupted campaigns merge bit-identically.

The contract under test is the hard one from the service design: a
campaign that is interrupted at *any* cut point — including mid
seed-batch group and mid affinity-reorder window — and then resumed
(with any worker count, with or without seed batching, even a different
configuration than the first attempt) must produce a merged record set
bit-identical to an uninterrupted run.  Interruptions are injected by a
backend wrapper that raises after a chosen number of completions, which
leaves the journal in exactly the state a ``kill -9`` would (the CI smoke
test covers the literal-kill variant end to end).
"""

from __future__ import annotations

import random

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service.backends import PoolBackend
from repro.service.checkpoint import run_checkpointed

#: Short hidden-node runs (cheap, exercises the affinity reorder window
#: because seeds × delta interleave in expansion order).
HIDDEN_FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}

#: Short testbed-star runs (the seed-batchable experiment).
STAR_FIXED = {"packets_per_node": 2, "warmup": 0.5, "delta": 40.0, "max_duration": 4.0}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def hidden_sweep():
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed=HIDDEN_FIXED,
        seeds=[0, 1, 2],
    )


def star_sweep():
    return Sweep(
        experiment="testbed-star",
        macs=["qma"],
        fixed=STAR_FIXED,
        seeds=list(range(6)),
    )


def reference_records(sweep):
    with CampaignRunner() as runner:
        return [record.to_dict() for record in runner.run(sweep).records]


class InterruptingBackend(PoolBackend):
    """Raises ``KeyboardInterrupt`` after ``cut`` records have completed.

    The journal append happens before the interrupt, exactly like a kill
    arriving between two appends: completed work is durable, in-flight
    work is lost.
    """

    def __init__(self, cut: int, **kwargs) -> None:
        super().__init__(**kwargs)
        self.cut = int(cut)
        self._seen = 0

    def run(self, sweep, indices, journal, on_record=None):
        def counting(index, record):
            self._seen += 1
            if on_record is not None:
                on_record(index, record)
            if self._seen >= self.cut:
                raise KeyboardInterrupt

        super().run(sweep, indices, journal, on_record=counting)


def interrupt_then_resume(sweep, journal_path, cut, first_options, resume_options):
    """Run with an interrupt after ``cut`` records, resume, return records."""
    backend = InterruptingBackend(cut, **first_options)
    try:
        with pytest.raises(KeyboardInterrupt):
            run_checkpointed(sweep, journal_path, backend=backend)
    finally:
        backend.close()
    resume_backend = PoolBackend(**resume_options)
    try:
        outcome = run_checkpointed(
            sweep, journal_path, backend=resume_backend, collect=True
        )
    finally:
        resume_backend.close()
    assert outcome.resumed == cut
    assert outcome.executed == sweep.size - cut
    return [record.to_dict() for record in outcome.records]


class TestResumeBitIdentical:
    def test_randomized_cut_points(self, tmp_path):
        """Interrupt at seeded-random cuts; resumed output == cold output."""
        sweep = hidden_sweep()
        expected = reference_records(sweep)
        rng = random.Random(0xC0FFEE)
        cuts = sorted(rng.sample(range(1, sweep.size), 3))
        for cut in cuts:
            merged = interrupt_then_resume(
                sweep, str(tmp_path / f"cut{cut}.jsonl"), cut, {}, {}
            )
            assert merged == expected, f"cut={cut} diverged"

    @pytest.mark.parametrize("resume_jobs", [1, 4])
    def test_resume_across_worker_counts(self, tmp_path, resume_jobs):
        """First attempt serial, resume with jobs=1 vs jobs=4: identical."""
        sweep = hidden_sweep()
        expected = reference_records(sweep)
        merged = interrupt_then_resume(
            sweep,
            str(tmp_path / "j.jsonl"),
            2,
            {},
            {"jobs": resume_jobs},
        )
        assert merged == expected

    @pytest.mark.parametrize("resume_batch", [1, 4])
    def test_cut_mid_seed_batch_group(self, tmp_path, resume_batch):
        """Interrupt inside a 4-seed lockstep batch; resume batched and not."""
        sweep = star_sweep()
        expected = reference_records(sweep)
        # batch_seeds=4 groups seeds [0..3] and [4..5]; cut=2 stops inside
        # the first lockstep group.
        merged = interrupt_then_resume(
            sweep,
            str(tmp_path / "j.jsonl"),
            2,
            {"batch_seeds": 4},
            {"batch_seeds": resume_batch},
        )
        assert merged == expected

    def test_cut_mid_reorder_window(self, tmp_path):
        """Interrupt while the affinity reorder buffer holds pending runs.

        With jobs=4 the runner dispatches in affinity order and re-emits in
        expansion order through the reorder buffer; cutting early leaves a
        journal whose completion set is *not* an expansion-order prefix.
        """
        sweep = hidden_sweep()
        expected = reference_records(sweep)
        merged = interrupt_then_resume(
            sweep,
            str(tmp_path / "j.jsonl"),
            2,
            {"jobs": 4},
            {"jobs": 4},
        )
        assert merged == expected

    def test_double_interrupt_then_resume(self, tmp_path):
        """Two crashes at different depths before the final resume."""
        sweep = hidden_sweep()
        expected = reference_records(sweep)
        path = str(tmp_path / "j.jsonl")
        for cut in (1, 2):
            backend = InterruptingBackend(cut)
            try:
                with pytest.raises(KeyboardInterrupt):
                    run_checkpointed(sweep, path, backend=backend)
            finally:
                backend.close()
        outcome = run_checkpointed(sweep, path, collect=True)
        assert outcome.resumed == 3  # 1 from the first crash + 2 from the second
        assert [record.to_dict() for record in outcome.records] == expected

    def test_torn_tail_then_resume(self, tmp_path):
        """A crash mid-append (torn final line) resumes to identical output."""
        sweep = hidden_sweep()
        expected = reference_records(sweep)
        path = str(tmp_path / "j.jsonl")
        backend = InterruptingBackend(3)
        try:
            with pytest.raises(KeyboardInterrupt):
                run_checkpointed(sweep, path, backend=backend)
        finally:
            backend.close()
        with open(path, "ab") as handle:
            handle.write(b'{"index": 3, "digest": "abc", "record"')
        with pytest.warns(RuntimeWarning, match="truncated"):
            outcome = run_checkpointed(sweep, path, collect=True)
        assert outcome.resumed == 3
        assert [record.to_dict() for record in outcome.records] == expected


class TestCheckpointOutcome:
    def test_cold_run_counts(self, tmp_path):
        sweep = hidden_sweep()
        outcome = run_checkpointed(sweep, str(tmp_path / "j.jsonl"), collect=True)
        assert (outcome.resumed, outcome.executed) == (0, sweep.size)
        assert outcome.total == sweep.size
        assert len(outcome.result()) == sweep.size

    def test_noop_resume_executes_nothing(self, tmp_path):
        sweep = hidden_sweep()
        path = str(tmp_path / "j.jsonl")
        run_checkpointed(sweep, path)
        outcome = run_checkpointed(sweep, path, collect=True)
        assert (outcome.resumed, outcome.executed) == (sweep.size, 0)
        assert [r.to_dict() for r in outcome.records] == reference_records(sweep)

    def test_records_not_kept_without_collect(self, tmp_path):
        sweep = hidden_sweep()
        outcome = run_checkpointed(sweep, str(tmp_path / "j.jsonl"))
        assert outcome.records is None
        with pytest.raises(ValueError):
            outcome.result()

    def test_sinks_see_expansion_order(self, tmp_path):
        """Sinks receive the merged records in expansion order and get closed."""
        sweep = hidden_sweep()

        class Probe:
            def __init__(self):
                self.seeds = []
                self.closed = False

            def write(self, record):
                self.seeds.append((record.scenario.params["delta"], record.scenario.seed))

            def close(self):
                self.closed = True

        probe = Probe()
        run_checkpointed(sweep, str(tmp_path / "j.jsonl"), sinks=[probe])
        expected = [
            (scenario.params["delta"], scenario.seed) for scenario in sweep
        ]
        assert probe.seeds == expected
        assert probe.closed
