"""Journal compaction and torn-write recovery.

Two rotation/robustness contracts of the checkpoint journal:

* ``compact()`` seals the contiguous completed prefix into an immutable
  segment file without changing what any replay sees — resumes, digests
  and expansion order are oblivious to how many segments history spans;
* a crash mid-append (simulated at *every* byte offset of the final
  record line) never corrupts the journal: the torn tail is discarded on
  open and exactly that run becomes pending again.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service.checkpoint import run_checkpointed
from repro.service.journal import CheckpointJournal

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def make_sweep():
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed=FIXED,
        seeds=[0, 1, 2],
    )


def run_full(path):
    outcome = run_checkpointed(make_sweep(), str(path), collect=True)
    assert outcome.status == "complete"
    return [record.to_dict() for record in outcome.records]


def replay_dicts(path):
    journal = CheckpointJournal.open(str(path))
    try:
        return [(index, record.to_dict()) for index, record in journal.iter_completed()]
    finally:
        journal.close()


class TestCompaction:
    def test_compacting_a_complete_journal_preserves_replay(self, tmp_path):
        path = tmp_path / "full.jsonl"
        baseline = run_full(path)
        before = replay_dicts(path)
        journal = CheckpointJournal.open(str(path))
        try:
            segment = journal.compact()
            assert segment is not None
            assert os.path.exists(segment)
            assert journal.pending_indices() == []
        finally:
            journal.close()
        assert replay_dicts(path) == before
        assert [record for _i, record in before] == baseline
        # The active journal shrank: completions now live in the segment.
        assert os.path.getsize(path) < os.path.getsize(segment)

    def test_compact_respects_min_runs_and_is_idempotent(self, tmp_path):
        path = tmp_path / "full.jsonl"
        run_full(path)
        journal = CheckpointJournal.open(str(path))
        try:
            assert journal.compact(min_runs=7) is None  # only 6 sealable
            assert journal.compact(min_runs=6) is not None
            assert journal.compact() is None  # nothing new to seal
        finally:
            journal.close()

    def test_append_to_sealed_index_rejected(self, tmp_path):
        path = tmp_path / "full.jsonl"
        run_full(path)
        journal = CheckpointJournal.open(str(path))
        try:
            journal.compact()
            with pytest.raises(ValueError, match="sealed"):
                journal.append(0, None)
        finally:
            journal.close()

    def test_resume_after_mid_campaign_compaction(self, tmp_path):
        full = tmp_path / "full.jsonl"
        baseline = run_full(full)
        replayed = replay_dicts(full)

        # Rebuild a half-finished journal from the baseline's records —
        # byte-wise this is exactly a journal interrupted after 3 runs.
        partial = tmp_path / "partial.jsonl"
        source = CheckpointJournal.open(str(full))
        records = {index: record for index, record in source.iter_completed()}
        source.close()
        journal = CheckpointJournal.open_or_create(str(partial), make_sweep())
        for index in (0, 1, 2):
            journal.append(index, records[index])
        segment = journal.compact()
        assert segment is not None
        assert journal.pending_indices() == [3, 4, 5]
        journal.close()

        outcome = run_checkpointed(make_sweep(), str(partial), collect=True)
        assert outcome.status == "complete"
        assert outcome.resumed == 3 and outcome.executed == 3
        assert [record.to_dict() for record in outcome.records] == baseline
        assert replay_dicts(partial) == replayed

    def test_repeated_compaction_grows_contiguous_segments(self, tmp_path):
        full = tmp_path / "full.jsonl"
        run_full(full)
        replayed = replay_dicts(full)
        source = CheckpointJournal.open(str(full))
        records = {index: record for index, record in source.iter_completed()}
        source.close()

        path = tmp_path / "rotating.jsonl"
        journal = CheckpointJournal.open_or_create(str(path), make_sweep())
        segments = []
        for index in range(6):
            journal.append(index, records[index])
            if index % 2 == 1:  # seal every two runs
                segments.append(journal.compact())
        journal.close()
        assert all(segment is not None for segment in segments)
        assert len(set(segments)) == 3
        assert replay_dicts(path) == replayed

    def test_out_of_prefix_completions_survive_compaction(self, tmp_path):
        full = tmp_path / "full.jsonl"
        run_full(full)
        source = CheckpointJournal.open(str(full))
        records = {index: record for index, record in source.iter_completed()}
        source.close()

        path = tmp_path / "gappy.jsonl"
        journal = CheckpointJournal.open_or_create(str(path), make_sweep())
        for index in (0, 1, 4, 5):  # gap at 2, 3
            journal.append(index, records[index])
        assert journal.compact() is not None  # seals [0, 2) only
        assert journal.pending_indices() == [2, 3]
        journal.close()

        reopened = CheckpointJournal.open(str(path))
        try:
            assert [index for index, _r in reopened.iter_completed()] == [0, 1, 4, 5]
            assert reopened.pending_indices() == [2, 3]
        finally:
            reopened.close()


class TestTornWriteFuzz:
    def test_every_byte_offset_of_the_final_record(self, tmp_path):
        """Simulate a crash at every possible cut point of the last append."""
        path = tmp_path / "full.jsonl"
        baseline = run_full(path)
        raw = path.read_bytes()
        # The final *completion* line, newline included (the very last
        # line of a finished journal is its status event — a crash mid
        # final append happens before that event exists).
        line_start = raw.rfind(b'\n{"digest"') + 1
        line_end = raw.index(b"\n", line_start) + 1
        raw = raw[:line_end]
        final_line = raw[line_start:]
        assert len(final_line) > 100

        torn = tmp_path / "torn.jsonl"
        for cut in range(len(final_line)):
            torn.write_bytes(raw[: line_start + cut])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                journal = CheckpointJournal.open(str(torn))
            try:
                # However the line is torn, exactly the final run is lost.
                assert journal.pending_indices() == [5], f"cut at byte {cut}"
                assert len(list(journal.iter_completed())) == 5
            finally:
                journal.close()

        # Full recovery drill at representative cut points: nothing cut,
        # one byte written, torn mid-record, newline lost.
        for cut in (0, 1, len(final_line) // 2, len(final_line) - 1):
            torn.write_bytes(raw[: line_start + cut])
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                outcome = run_checkpointed(make_sweep(), str(torn), collect=True)
            assert outcome.status == "complete"
            assert outcome.resumed == 5 and outcome.executed == 1
            assert [record.to_dict() for record in outcome.records] == baseline

    def test_torn_event_line_is_discarded_too(self, tmp_path):
        path = tmp_path / "full.jsonl"
        run_full(path)
        with open(path, "ab") as handle:
            handle.write(b'{"event": {"kind": "comp')  # torn, no newline
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            journal = CheckpointJournal.open(str(path))
        try:
            assert journal.pending_indices() == []
            assert len(list(journal.iter_completed())) == 6
        finally:
            journal.close()
