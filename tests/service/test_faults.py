"""Fault-injection harness: spec parsing, matching, exactly-once markers.

Unit tests of :mod:`repro.service.faults` — nothing here runs a
simulation; the chaos matrix that drives real campaigns through the
harness lives in ``test_supervisor.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.campaign import runner
from repro.campaign.spec import Scenario
from repro.service import faults
from repro.service.faults import Fault, FaultPlan, InjectedPoisonError


def scenario(seed=0, delta=50.0, mac="unslotted-csma"):
    return Scenario(
        experiment="hidden-node",
        mac=mac,
        seed=seed,
        params={"delta": delta, "packets_per_node": 2},
    )


@pytest.fixture(autouse=True)
def _clean_install():
    yield
    faults.install(None)
    faults._IS_WORKER = False


class TestSpecParsing:
    def test_single_fault(self):
        plan = FaultPlan.from_spec("crash@seed=1")
        assert len(plan.faults) == 1
        fault = plan.faults[0]
        assert fault.kind == "crash"
        assert dict(fault.match) == {"seed": 1}

    def test_hang_duration_argument(self):
        (fault,) = FaultPlan.from_spec("hang:7.5@seed=2").faults
        assert fault.kind == "hang"
        assert fault.hang_s == 7.5

    def test_torn_alias_and_after(self):
        (fault,) = FaultPlan.from_spec("torn:12").faults
        assert fault.kind == "torn-tail"
        assert fault.after == 12
        (fault,) = FaultPlan.from_spec("torn@after=3").faults
        assert fault.after == 3

    def test_multiple_faults_semicolon_separated(self):
        plan = FaultPlan.from_spec("crash@seed=1;hang:30@seed=2;torn@after=10")
        assert [fault.kind for fault in plan.faults] == ["crash", "hang", "torn-tail"]

    def test_match_values_parse_numerically(self):
        (fault,) = FaultPlan.from_spec("poison@seed=3,delta=50.0").faults
        assert dict(fault.match) == {"seed": 3, "delta": 50.0}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_spec("explode@seed=1")

    def test_worker_fault_without_match_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("crash")

    def test_roundtrips_through_dict(self):
        plan = FaultPlan.from_spec("crash@seed=1;torn@after=4")
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()

    def test_roundtrips_through_pickle(self):
        plan = FaultPlan.from_spec("hang:5@seed=2")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.to_dict() == plan.to_dict()


class TestMatching:
    def test_matches_seed_and_params(self):
        fault = Fault(kind="poison", match=(("seed", 1), ("delta", 50.0)))
        assert fault.matches(scenario(seed=1, delta=50.0))
        assert not fault.matches(scenario(seed=1, delta=100.0))
        assert not fault.matches(scenario(seed=2, delta=50.0))

    def test_matches_mac_attribute(self):
        fault = Fault(kind="poison", match=(("mac", "qma"),))
        assert fault.matches(scenario(mac="qma"))
        assert not fault.matches(scenario(mac="unslotted-csma"))


class TestFiring:
    def test_poison_raises_every_attempt(self, tmp_path):
        plan = FaultPlan.from_spec("poison@seed=1")
        plan.bind(str(tmp_path / "scratch"))
        with pytest.raises(InjectedPoisonError):
            plan.check_scenario(scenario(seed=1))
        with pytest.raises(InjectedPoisonError):
            plan.check_scenario(scenario(seed=1))  # not exactly-once
        plan.check_scenario(scenario(seed=0))  # non-matching passes

    def test_crash_needs_worker_process(self, tmp_path):
        plan = FaultPlan.from_spec("crash@seed=1")
        plan.bind(str(tmp_path / "scratch"))
        # In the supervisor process a crash fault must never fire — it
        # would take down the supervision loop itself.
        plan.check_scenario(scenario(seed=1))

    def test_torn_tail_fires_once_after_threshold(self, tmp_path):
        plan = FaultPlan.from_spec("torn@after=3")
        plan.bind(str(tmp_path / "scratch"))
        assert not plan.take_torn_tail(2)
        assert plan.take_torn_tail(3)
        assert not plan.take_torn_tail(4)  # marker file: exactly once

    def test_marker_survives_a_fresh_plan_instance(self, tmp_path):
        scratch = str(tmp_path / "scratch")
        first = FaultPlan.from_spec("torn@after=1")
        first.bind(scratch)
        assert first.take_torn_tail(1)
        # A resume constructs a new plan over the same journal: the
        # on-disk marker keeps the fault from firing twice per campaign.
        second = FaultPlan.from_spec("torn@after=1")
        second.bind(scratch)
        assert not second.take_torn_tail(1)

    def test_drop_http_fires_once(self, tmp_path):
        plan = FaultPlan.from_spec("drop-http")
        plan.bind(str(tmp_path / "scratch"))
        assert plan.take_drop_http()
        assert not plan.take_drop_http()


class TestInstallation:
    def test_install_hooks_the_runner(self):
        plan = FaultPlan.from_spec("poison@seed=1")
        faults.install(plan)
        assert runner.FAULT_HOOK is not None
        assert faults.active_plan() is plan
        faults.install(None)
        assert runner.FAULT_HOOK is None
        assert faults.active_plan() is None

    def test_plan_free_campaign_runner_clears_stale_hook(self):
        # Forked workers inherit the parent's hook; constructing a
        # fault-free runner must actively uninstall a stale plan.
        faults.install(FaultPlan.from_spec("poison@seed=0"))
        campaign_runner = runner.CampaignRunner(jobs=1)
        try:
            assert runner.FAULT_HOOK is None
        finally:
            campaign_runner.close()
