"""Checkpoint journal: crash-safe append, torn-tail tolerance, replay."""

from __future__ import annotations

import json

import pytest

from repro.campaign.records import RunRecord
from repro.campaign.spec import Scenario, Sweep
from repro.service.journal import (
    CheckpointJournal,
    JournalError,
    SweepMismatchError,
)
from repro.service.manifest import sweep_digest


def make_sweep(**overrides):
    spec = dict(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed={"packets_per_node": 2},
        seeds=[0, 1, 2],
    )
    spec.update(overrides)
    return Sweep(**spec)


def make_record(index: int) -> RunRecord:
    return RunRecord(
        scenario=Scenario(
            experiment="hidden-node",
            mac="unslotted-csma",
            seed=index,
            params={"delta": 50.0},
        ),
        metrics={"pdr": 0.5 + index / 100.0, "average_delay": 0.01 * index},
    )


class TestLifecycle:
    def test_create_then_open_roundtrip(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.create(path, sweep, meta={"who": "test"})
        journal.append(0, make_record(0))
        journal.append(2, make_record(2))
        journal.close()

        reopened = CheckpointJournal.open(path, sweep=sweep)
        assert reopened.spec_digest == sweep_digest(sweep)
        assert reopened.total == sweep.size
        assert reopened.meta == {"who": "test"}
        assert reopened.completed_indices() == {0, 2}
        assert reopened.pending_indices() == [1, 3, 4, 5]
        assert 0 in reopened and 1 not in reopened
        assert len(reopened) == 2
        reopened.close()

    def test_header_sweep_reconstruction(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal.create(path, sweep).close()
        reopened = CheckpointJournal.open(path)
        assert sweep_digest(reopened.sweep) == sweep_digest(sweep)
        assert reopened.sweep.size == sweep.size
        reopened.close()

    def test_open_or_create(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        first = CheckpointJournal.open_or_create(path, sweep)
        first.append(1, make_record(1))
        first.close()
        second = CheckpointJournal.open_or_create(path, sweep)
        assert second.completed_indices() == {1}
        second.close()

    def test_context_manager_closes(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        with CheckpointJournal.create(path, sweep) as journal:
            journal.append(0, make_record(0))
        assert CheckpointJournal.open(path).completed_indices() == {0}


class TestReplay:
    def test_replay_returns_identical_record(self, tmp_path):
        sweep = make_sweep()
        journal = CheckpointJournal.create(str(tmp_path / "j.jsonl"), sweep)
        record = make_record(3)
        journal.append(3, record)
        replayed = journal.replay(3)
        assert replayed.to_dict() == record.to_dict()
        journal.close()

    def test_replay_after_reopen(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.create(path, sweep)
        for index in (5, 0, 3):  # out of expansion order, as shard merges do
            journal.append(index, make_record(index))
        journal.close()
        reopened = CheckpointJournal.open(path)
        assert [i for i, _ in reopened.iter_completed()] == [0, 3, 5]
        assert reopened.replay(5).scenario.seed == 5
        reopened.close()

    def test_replay_missing_index(self, tmp_path):
        journal = CheckpointJournal.create(str(tmp_path / "j.jsonl"), make_sweep())
        with pytest.raises(KeyError):
            journal.replay(1)
        journal.close()

    def test_replay_detects_tampering(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.create(path, sweep)
        journal.append(0, make_record(0))
        journal.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        doctored = json.loads(lines[1])
        doctored["record"]["metrics"]["pdr"] = 0.99  # digest now stale
        with open(path, "wb") as handle:
            handle.write(lines[0])
            handle.write((json.dumps(doctored, sort_keys=True) + "\n").encode())
        reopened = CheckpointJournal.open(path)
        with pytest.raises(JournalError, match="digest mismatch"):
            reopened.replay(0)
        reopened.close()

    def test_append_out_of_range(self, tmp_path):
        journal = CheckpointJournal.create(str(tmp_path / "j.jsonl"), make_sweep())
        with pytest.raises(ValueError):
            journal.append(journal.total, make_record(0))
        journal.close()


class TestCrashTolerance:
    def test_torn_tail_discarded_with_warning(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.create(path, sweep)
        journal.append(0, make_record(0))
        journal.append(1, make_record(1))
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"index": 2, "digest": "dead')  # crash mid-write
        with pytest.warns(RuntimeWarning, match="truncated"):
            reopened = CheckpointJournal.open(path, sweep=sweep)
        assert reopened.completed_indices() == {0, 1}
        assert 2 in reopened.pending_indices()
        reopened.close()

    def test_resume_after_torn_tail_appends_cleanly(self, tmp_path):
        """The torn bytes stay in the file; new appends and replay must not trip."""
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.create(path, sweep)
        journal.append(0, make_record(0))
        journal.close()
        with open(path, "ab") as handle:
            handle.write(b'{"index": 1, "rec')
        with pytest.warns(RuntimeWarning):
            reopened = CheckpointJournal.open(path, sweep=sweep)
        # The torn fragment has no trailing newline: appends must start a
        # fresh line or the next record would be glued onto the fragment.
        reopened.append(1, make_record(1))
        assert reopened.replay(1).to_dict() == make_record(1).to_dict()
        reopened.close()
        final = CheckpointJournal.open(path, sweep=sweep)
        assert 1 in final.completed_indices()
        final.close()

    def test_mid_file_corruption_is_fatal(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal.create(path, sweep)
        journal.append(0, make_record(0))
        journal.append(1, make_record(1))
        journal.close()
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.write(lines[0])
            handle.write(b"garbage not json\n")
            handle.write(lines[2])
        with pytest.raises(JournalError, match="corrupt"):
            CheckpointJournal.open(path)

    def test_missing_header_is_fatal(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with open(path, "w") as handle:
            handle.write('{"index": 0, "digest": "x", "record": {}}\n')
        with pytest.raises(JournalError, match="header"):
            CheckpointJournal.open(path)

    def test_unsupported_version_is_fatal(self, tmp_path):
        sweep = make_sweep()
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal.create(path, sweep).close()
        data = json.loads(open(path).read())
        data["checkpoint"]["version"] = 99
        with open(path, "w") as handle:
            handle.write(json.dumps(data) + "\n")
        with pytest.raises(JournalError, match="version"):
            CheckpointJournal.open(path)


class TestSweepMismatch:
    def test_open_refuses_other_sweep(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal.create(path, make_sweep()).close()
        with pytest.raises(SweepMismatchError):
            CheckpointJournal.open(path, sweep=make_sweep(seeds=[0]))

    def test_open_or_create_refuses_other_sweep(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CheckpointJournal.create(path, make_sweep()).close()
        with pytest.raises(SweepMismatchError):
            CheckpointJournal.open_or_create(path, make_sweep(seeds=[0]))
