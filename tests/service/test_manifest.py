"""Manifest identity: spec digests, run ids, affinity order, shard splits."""

from __future__ import annotations

import pytest

from repro.campaign.spec import Sweep, construction_affinity_key
from repro.service.manifest import (
    affinity_order,
    record_digest,
    run_id,
    split_shards,
    sweep_digest,
)


def make_sweep(**overrides):
    spec = dict(
        experiment="hidden-node",
        macs=["unslotted-csma", "qma"],
        grid={"delta": [50.0, 100.0]},
        fixed={"packets_per_node": 2, "warmup": 0.2},
        seeds=[0, 1, 2],
    )
    spec.update(overrides)
    return Sweep(**spec)


class TestSweepDigest:
    def test_stable_across_json_roundtrip(self):
        sweep = make_sweep()
        clone = Sweep.from_dict(sweep.to_dict())
        assert sweep_digest(clone) == sweep_digest(sweep)

    def test_distinguishes_specs(self):
        assert sweep_digest(make_sweep()) != sweep_digest(make_sweep(seeds=[0, 1]))
        assert sweep_digest(make_sweep()) != sweep_digest(
            make_sweep(grid={"delta": [50.0, 101.0]})
        )

    def test_run_id_embeds_digest_prefix_and_index(self):
        digest = sweep_digest(make_sweep())
        assert run_id(digest, 137) == f"{digest[:12]}:137"


class TestRecordDigest:
    def test_key_order_independent(self):
        assert record_digest({"a": 1, "b": 2}) == record_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert record_digest({"a": 1}) != record_digest({"a": 2})


class TestAffinityOrder:
    def test_is_a_permutation(self):
        sweep = make_sweep()
        indices = list(range(sweep.size))
        order = affinity_order(sweep, indices)
        assert sorted(order) == indices

    def test_groups_shared_configurations_adjacently(self):
        """Runs with equal affinity keys must land in one contiguous streak."""
        sweep = make_sweep()
        scenarios = sweep.scenarios()
        order = affinity_order(sweep, list(range(sweep.size)))
        keys = [
            construction_affinity_key(
                sweep.experiment,
                scenarios[i].propagation,
                scenarios[i].seed,
                scenarios[i].params,
            )
            for i in order
        ]
        seen = set()
        for position, key in enumerate(keys):
            if position and key != keys[position - 1]:
                assert key not in seen, "affinity group split across the order"
                seen.add(keys[position - 1])

    def test_stable_within_groups(self):
        """Equal keys keep expansion order (stable sort)."""
        sweep = make_sweep()
        scenarios = sweep.scenarios()

        def key(i):
            return construction_affinity_key(
                sweep.experiment,
                scenarios[i].propagation,
                scenarios[i].seed,
                scenarios[i].params,
            )

        order = affinity_order(sweep, list(range(sweep.size)))
        for a, b in zip(order, order[1:]):
            if key(a) == key(b):
                assert a < b

    def test_subset(self):
        sweep = make_sweep()
        subset = [1, 4, 7, 10]
        order = affinity_order(sweep, subset)
        assert sorted(order) == subset

    def test_empty(self):
        assert affinity_order(make_sweep(), []) == []


class TestSplitShards:
    def test_contiguous_and_complete(self):
        ordered = [5, 3, 9, 1, 7, 2, 8]
        chunks = split_shards(ordered, 3)
        assert [i for chunk in chunks for i in chunk] == ordered
        assert len(chunks) == 3

    def test_near_equal_sizes(self):
        chunks = split_shards(list(range(10)), 3)
        assert sorted(len(c) for c in chunks) == [3, 3, 4]

    def test_never_empty_shards(self):
        chunks = split_shards([1, 2], 5)
        assert chunks == [[1], [2]]

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            split_shards([1], 0)
