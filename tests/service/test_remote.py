"""Cross-host dispatch: agents, host health, stream merging, chaos matrix.

The robustness contracts of :mod:`repro.service.remote`:

* hosts declarations are validated up front (line numbers, duplicate
  detection) and ``make_backend`` errors name the valid backends and the
  option source;
* the journal stream merger survives a connection torn at *every* byte
  offset of a completion line — the re-attach resumes at the last fully
  processed byte, recomputing nothing and duplicating nothing;
* a two-localhost-agent remote run is bit-identical to the single-host
  shard and pool backends, including after an agent is SIGKILLed
  mid-campaign (the lost slice is reassigned to the surviving host);
* injected network faults (``drop-stream``, ``partition``,
  ``slow-link``, ``agent-crash``) heal through transport retry, host
  quarantine and slice reassignment — and when every host is gone the
  supervision ladder degrades remote -> local shard and still finishes.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service.agent import AgentServer, CampaignAgent
from repro.service.backends import PoolBackend, ShardBackend, make_backend
from repro.service.client import ServiceClient
from repro.service.faults import FaultPlan
from repro.service.journal import CheckpointJournal, JournalError
from repro.service.remote import (
    HostRegistry,
    HostSpec,
    JournalStreamMerger,
    RemoteBackend,
    RemoteDispatchError,
    StreamProtocolError,
    parse_host_entry,
    parse_hosts,
    parse_hosts_file,
)
from repro.service.supervisor import make_supervised

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def make_sweep(seeds=3):
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed=FIXED,
        seeds=list(range(seeds)),
    )


def reference_records(sweep):
    with CampaignRunner() as runner:
        return [record.to_dict() for record in runner.run(sweep).records]


def run_via(backend, sweep, tmp_path, name="b.jsonl", indices=None):
    journal = CheckpointJournal.create(str(tmp_path / name), sweep)
    try:
        backend.run(
            sweep,
            list(range(sweep.size)) if indices is None else indices,
            journal,
        )
        return {index: record.to_dict() for index, record in journal.iter_completed()}
    finally:
        journal.close()
        backend.close()


@pytest.fixture()
def agents(tmp_path):
    """Two in-process localhost agents; yields their HOST:PORT*CAP entries."""
    servers = []
    hosts = []
    for i in range(2):
        agent = CampaignAgent(workdir=str(tmp_path / f"agent{i}"), name=f"a{i}")
        server = AgentServer(agent)
        host, port = server.start()
        servers.append(server)
        hosts.append(f"{host}:{port}*2")
    yield hosts
    for server in servers:
        server.stop()


# ------------------------------------------------------------ host parsing


class TestHostParsing:
    def test_entry_forms(self):
        assert parse_host_entry("127.0.0.1:9000") == HostSpec("127.0.0.1", 9000, 1)
        assert parse_host_entry("node-a:8000*4") == HostSpec("node-a", 8000, 4)

    @pytest.mark.parametrize(
        "bad", ["127.0.0.1", "host:port", "host:9000*x", "host:9000*0", "host:70000"]
    )
    def test_invalid_entries_raise(self, bad):
        with pytest.raises(ValueError):
            parse_host_entry(bad)

    def test_hosts_file_errors_carry_line_numbers(self, tmp_path):
        path = tmp_path / "hosts"
        path.write_text("# fleet\n127.0.0.1:9000*2\n\nnot-a-host\n")
        with pytest.raises(ValueError, match=r"line 4"):
            parse_hosts_file(str(path))

    def test_hosts_file_parses_comments_and_caps(self, tmp_path):
        path = tmp_path / "hosts"
        path.write_text("# fleet\n127.0.0.1:9000*2  # big box\n127.0.0.1:9001\n")
        assert parse_hosts_file(str(path)) == [
            HostSpec("127.0.0.1", 9000, 2),
            HostSpec("127.0.0.1", 9001, 1),
        ]

    def test_parse_hosts_mixes_inline_and_file(self, tmp_path):
        path = tmp_path / "hosts"
        path.write_text("127.0.0.1:9001\n")
        specs = parse_hosts(["127.0.0.1:9000*2", f"@{path}"])
        assert [spec.key for spec in specs] == ["127.0.0.1:9000", "127.0.0.1:9001"]

    def test_duplicates_and_empty_rejected(self):
        with pytest.raises(ValueError, match="duplicate host"):
            parse_hosts(["h:1", "h:1*2"])
        with pytest.raises(ValueError, match="no hosts declared"):
            parse_hosts([])

    def test_error_names_the_source(self):
        with pytest.raises(ValueError, match=re.escape("submit options")):
            parse_hosts(["nope:xx"], source="submit options")


class TestMakeBackendErrors:
    def test_unknown_backend_lists_valid_kinds_and_source(self):
        with pytest.raises(ValueError) as excinfo:
            make_backend({"backend": "bogus"}, source="--backend")
        message = str(excinfo.value)
        assert "unknown dispatch backend 'bogus'" in message
        assert "(from --backend)" in message
        for kind in ("pool", "shard", "serial", "remote"):
            assert kind in message

    def test_unknown_option_names_source(self):
        with pytest.raises(ValueError) as excinfo:
            make_backend(
                {"backend": "remote", "hosts": ["h:1"], "bogus": 1},
                source="submit options",
            )
        message = str(excinfo.value)
        assert "unknown option(s) ['bogus']" in message
        assert "(from submit options)" in message

    def test_remote_requires_hosts(self):
        with pytest.raises(ValueError, match="no hosts declared"):
            make_backend({"backend": "remote"})


# ------------------------------------------------------------ host registry


class TestHostRegistry:
    def test_quarantine_after_consecutive_failures(self):
        registry = HostRegistry([HostSpec("h", 1)], max_failures=2, probation=60.0)
        assert registry.failure("h:1", "boom") is False
        assert registry.has_available()
        assert registry.failure("h:1", "boom") is True
        assert not registry.has_available()
        assert registry.acquire() is None
        snapshot = registry.snapshot()[0]
        assert snapshot["state"] == "quarantined"
        assert [event["kind"] for event in snapshot["events"]].count("quarantine") == 1

    def test_probation_expires_and_success_heals(self):
        registry = HostRegistry([HostSpec("h", 1)], max_failures=1, probation=0.05)
        registry.failure("h:1", "boom")
        assert registry.acquire() is None
        time.sleep(0.08)
        assert registry.acquire() == HostSpec("h", 1)
        registry.success("h:1")
        assert registry.snapshot()[0]["state"] == "healthy"
        assert registry.snapshot()[0]["failures"] == 0

    def test_acquire_respects_caps_and_load(self):
        registry = HostRegistry([HostSpec("a", 1, cap=1), HostSpec("b", 2, cap=2)])
        leases = [registry.acquire() for _ in range(3)]
        assert sorted(spec.key for spec in leases) == ["a:1", "b:2", "b:2"]
        assert registry.acquire() is None  # all caps exhausted
        registry.release("b:2")
        assert registry.acquire().key == "b:2"


# ----------------------------------------------------------- stream merging


def _stream_bytes(sweep, tmp_path):
    """Raw shard-journal bytes (header + completions) for merger tests."""
    source = CheckpointJournal.create(str(tmp_path / "src.jsonl"), sweep)
    backend = PoolBackend()
    try:
        backend.run(sweep, list(range(sweep.size)), source)
    finally:
        source.close()
        backend.close()
    with open(tmp_path / "src.jsonl", "rb") as handle:
        return handle.read()


class TestJournalStreamMerger:
    def test_single_feed_merges_everything(self, tmp_path):
        sweep = make_sweep(seeds=2)
        raw = _stream_bytes(sweep, tmp_path)
        journal = CheckpointJournal.create(str(tmp_path / "dst.jsonl"), sweep)
        merger = JournalStreamMerger(journal, threading.Lock())
        merger.feed(0, raw)
        assert merger.merged == sweep.size
        assert merger.complete == len(raw)
        assert journal.pending_indices() == []
        journal.close()

    def test_reconnect_fuzz_at_every_byte_of_final_line(self, tmp_path):
        """Mirror of the journal torn-write fuzz, applied to the stream.

        The connection drops at every byte offset of the final completion
        line (and a sample of earlier offsets); the re-attach resumes at
        ``merger.complete`` and the merged journal is always complete,
        with no run merged twice.
        """
        sweep = make_sweep(seeds=2)
        raw = _stream_bytes(sweep, tmp_path)
        body = raw[: raw.rstrip(b"\n").rfind(b"\n") + 1]
        final_start = len(body)
        assert len(raw) - final_start > 100

        cuts = sorted(
            set(range(final_start, len(raw)))
            | set(range(0, final_start, max(1, final_start // 23)))
        )
        for cut in cuts:
            journal = CheckpointJournal.create(str(tmp_path / "dst.jsonl"), sweep)
            merger = JournalStreamMerger(journal, threading.Lock())
            merger.feed(0, raw[:cut])
            # Connection drops here; the dispatcher reconnects and the
            # agent resumes from the last fully processed byte.
            merger.reset(merger.complete)
            merger.feed(merger.complete, raw[merger.complete:])
            assert merger.merged == sweep.size, f"cut at byte {cut}"
            assert journal.pending_indices() == [], f"cut at byte {cut}"
            journal.close()

    def test_restart_from_zero_skips_already_merged(self, tmp_path):
        sweep = make_sweep(seeds=2)
        raw = _stream_bytes(sweep, tmp_path)
        journal = CheckpointJournal.create(str(tmp_path / "dst.jsonl"), sweep)
        merger = JournalStreamMerger(journal, threading.Lock())
        merger.feed(0, raw)
        first = merger.merged
        # Agent restarted: new stream token, offset 0 — every line is
        # re-fed but nothing is appended twice.
        merger.reset(0)
        merger.feed(0, raw)
        assert merger.merged == first
        assert len(dict(journal.iter_completed())) == sweep.size
        journal.close()

    def test_offset_gap_is_a_protocol_error(self, tmp_path):
        sweep = make_sweep(seeds=2)
        raw = _stream_bytes(sweep, tmp_path)
        journal = CheckpointJournal.create(str(tmp_path / "dst.jsonl"), sweep)
        merger = JournalStreamMerger(journal, threading.Lock())
        with pytest.raises(StreamProtocolError):
            merger.feed(10, raw[10:])
        journal.close()

    def test_corrupted_record_digest_is_rejected(self, tmp_path):
        sweep = make_sweep(seeds=2)
        raw = _stream_bytes(sweep, tmp_path)
        lines = raw.splitlines(keepends=True)
        data = json.loads(lines[-1])
        metric = next(iter(data["record"]["metrics"]))
        data["record"]["metrics"][metric] += 1.0  # digest now stale
        lines[-1] = json.dumps(data).encode("utf-8") + b"\n"
        tampered = b"".join(lines)
        journal = CheckpointJournal.create(str(tmp_path / "dst.jsonl"), sweep)
        merger = JournalStreamMerger(journal, threading.Lock())
        with pytest.raises(JournalError, match="digest mismatch"):
            merger.feed(0, tampered)
        journal.close()

    def test_wrong_spec_digest_header_is_rejected(self, tmp_path):
        sweep = make_sweep(seeds=2)
        raw = _stream_bytes(sweep, tmp_path)
        other = make_sweep(seeds=3)
        journal = CheckpointJournal.create(str(tmp_path / "dst.jsonl"), other)
        merger = JournalStreamMerger(journal, threading.Lock())
        with pytest.raises(JournalError, match="spec digest"):
            merger.feed(0, raw)
        journal.close()


# ------------------------------------------------- determinism matrix


class TestRemoteDeterminism:
    def test_remote_matches_shard_and_pool(self, tmp_path, agents):
        sweep = make_sweep(seeds=3)
        reference = reference_records(sweep)
        remote = run_via(RemoteBackend(agents), sweep, tmp_path, "remote.jsonl")
        shard = run_via(ShardBackend(shards=2), sweep, tmp_path, "shard.jsonl")
        pool = run_via(PoolBackend(), sweep, tmp_path, "pool.jsonl")
        assert [remote[i] for i in range(sweep.size)] == reference
        assert remote == shard == pool

    def test_remote_resumes_partial_journal(self, tmp_path, agents):
        sweep = make_sweep(seeds=3)
        journal = CheckpointJournal.create(str(tmp_path / "r.jsonl"), sweep)
        backend = RemoteBackend(agents)
        try:
            backend.run(sweep, list(range(0, sweep.size, 2)), journal)
            done = set(dict(journal.iter_completed()))
            assert done == set(range(0, sweep.size, 2))
            backend.run(sweep, journal.pending_indices(), journal)
            merged = {i: r.to_dict() for i, r in journal.iter_completed()}
        finally:
            journal.close()
            backend.close()
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)


def _spawn_agent(tmp_path, name):
    """Subprocess agent via the CLI verb; returns (proc, 'host:port')."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "agent",
            "--port", "0", "--workdir", str(tmp_path / name), "--name", name,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+:\d+)", line)
    assert match, f"no listening line from agent: {line!r}"
    return proc, match.group(1)


class TestAgentLoss:
    def test_sigkilled_agent_slice_is_reassigned(self, tmp_path):
        sweep = make_sweep(seeds=4)
        procs = []
        try:
            victim, victim_host = _spawn_agent(tmp_path, "victim")
            survivor, survivor_host = _spawn_agent(tmp_path, "survivor")
            procs = [victim, survivor]
            journal = CheckpointJournal.create(str(tmp_path / "kill.jsonl"), sweep)
            backend = RemoteBackend(
                [victim_host, survivor_host],
                transport_attempts=2,
                host_failures=1,
                probation=60.0,
                io_timeout=10.0,
            )
            runner = threading.Thread(
                target=backend.run, args=(sweep, list(range(sweep.size)), journal)
            )
            runner.start()
            time.sleep(1.0)
            victim.send_signal(signal.SIGKILL)
            runner.join(timeout=180)
            assert not runner.is_alive()
            merged = {i: r.to_dict() for i, r in journal.iter_completed()}
            journal.close()
            backend.close()
            assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait()


# ------------------------------------------------------------ chaos matrix


class TestNetworkFaults:
    def test_drop_stream_resumes_at_byte_offset(self, tmp_path, agents):
        sweep = make_sweep(seeds=3)
        plan = FaultPlan.from_spec("drop-stream@after=2")
        merged = run_via(
            RemoteBackend(agents, fault_plan=plan), sweep, tmp_path, "drop.jsonl"
        )
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)

    def test_partition_quarantines_host_and_heals(self, tmp_path, agents):
        sweep = make_sweep(seeds=3)
        victim = agents[0].rpartition("*")[0]
        plan = FaultPlan.from_spec(f"partition:{victim}@after=5")
        backend = RemoteBackend(
            agents, fault_plan=plan, transport_attempts=2,
            host_failures=1, probation=60.0,
        )
        merged = run_via(backend, sweep, tmp_path, "part.jsonl")
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)
        states = {row["key"]: row["state"] for row in backend.registry.snapshot()}
        assert states[victim] == "quarantined"
        events = next(
            row for row in backend.registry.snapshot() if row["key"] == victim
        )["events"]
        assert "quarantine" in [event["kind"] for event in events]

    def test_all_hosts_partitioned_raises(self, tmp_path, agents):
        sweep = make_sweep(seeds=2)
        plan = FaultPlan.from_spec("partition@after=99")
        backend = RemoteBackend(
            agents, fault_plan=plan, transport_attempts=1,
            host_failures=1, probation=120.0,
        )
        journal = CheckpointJournal.create(str(tmp_path / "all.jsonl"), sweep)
        try:
            with pytest.raises(RemoteDispatchError, match="quarantined"):
                backend.run(sweep, list(range(sweep.size)), journal)
        finally:
            journal.close()
            backend.close()

    def test_slow_link_stalls_without_losing_runs(self, tmp_path, agents):
        sweep = make_sweep(seeds=2)
        plan = FaultPlan.from_spec("slow-link:1.0")
        merged = run_via(
            RemoteBackend(agents, fault_plan=plan), sweep, tmp_path, "slow.jsonl"
        )
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)

    def test_agent_crash_fault_kills_box_and_run_heals(self, tmp_path):
        sweep = make_sweep(seeds=3)
        procs = []
        try:
            first, first_host = _spawn_agent(tmp_path, "doomed")
            second, second_host = _spawn_agent(tmp_path, "steady")
            procs = [first, second]
            plan = FaultPlan.from_spec("agent-crash@shard=0")
            backend = RemoteBackend(
                [first_host, second_host],
                fault_plan=plan,
                transport_attempts=2,
                host_failures=1,
                probation=60.0,
            )
            merged = run_via(backend, sweep, tmp_path, "crash.jsonl")
            assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)
            # Exactly one agent died (whichever drew shard 0).
            time.sleep(0.2)
            assert sum(1 for proc in procs if proc.poll() is not None) == 1
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait()


class TestSupervisionLadder:
    def test_unreachable_hosts_degrade_to_local_shard(self, tmp_path):
        sweep = make_sweep(seeds=2)
        events = []
        backend = make_supervised(
            {
                "backend": "remote",
                "hosts": ["127.0.0.1:9", "127.0.0.1:10"],  # discard ports
                "connect_timeout": 0.2,
                "transport_attempts": 1,
                "host_failures": 1,
                "probation": 300.0,
                "backend_attempts": 1,
                "backoff_base": 0.0,
            },
            on_event=events.append,
        )
        merged = run_via(backend, sweep, tmp_path, "ladder.jsonl")
        assert [merged[i] for i in range(sweep.size)] == reference_records(sweep)
        degrades = [event for event in events if event["kind"] == "degrade"]
        assert degrades and degrades[0]["from_backend"] == "remote"
        assert degrades[0]["to_backend"] == "shard"


class TestClientRetry:
    def test_transient_errors_are_retried(self, monkeypatch):
        client = ServiceClient("127.0.0.1", 1, retries=3)
        calls = {"n": 0}

        def flaky(method, target, payload=None):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionResetError("blip")
            return [{"ok": True}]

        monkeypatch.setattr(client, "_attempt", flaky)
        monkeypatch.setattr(time, "sleep", lambda _s: None)
        assert client.health() == {"ok": True}
        assert calls["n"] == 3

    def test_retries_one_fails_fast(self, monkeypatch):
        client = ServiceClient("127.0.0.1", 1, retries=1)
        calls = {"n": 0}

        def always_down(method, target, payload=None):
            calls["n"] += 1
            raise ConnectionRefusedError("down")

        monkeypatch.setattr(client, "_attempt", always_down)
        with pytest.raises(ConnectionRefusedError):
            client.health()
        assert calls["n"] == 1

    def test_service_errors_are_not_retried(self, monkeypatch):
        from repro.service.client import ServiceError

        client = ServiceClient("127.0.0.1", 1, retries=3)
        calls = {"n": 0}

        def answered(method, target, payload=None):
            calls["n"] += 1
            raise ServiceError(404, "unknown job")

        monkeypatch.setattr(client, "_attempt", answered)
        with pytest.raises(ServiceError):
            client.status("job-1")
        assert calls["n"] == 1
