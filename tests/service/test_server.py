"""Campaign service front end: concurrent submissions, live stats, errors.

The server under test is the real asyncio stack on an ephemeral port; the
clients are real :class:`ServiceClient` instances over HTTP from the test
thread.  A throttled backend keeps tiny campaigns observably "mid-flight"
so the live-aggregate assertions are deterministic.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import CampaignServer, CampaignService

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def make_sweep(seeds, delta=50.0):
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [delta]},
        fixed=FIXED,
        seeds=list(seeds),
    )


@pytest.fixture
def live_server(tmp_path):
    """A running service + server on an ephemeral port; yields a client."""
    service = CampaignService(str(tmp_path / "root"), backend_options={"throttle": 0.05})
    server = CampaignServer(service)
    loop = asyncio.new_event_loop()
    host, port = loop.run_until_complete(server.start())
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    try:
        yield ServiceClient(host, port), service
    finally:
        service.close()
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()


class TestSubmission:
    def test_two_concurrent_submissions_both_complete(self, live_server):
        client, _service = live_server
        first = make_sweep([0, 1])
        second = make_sweep([10, 11], delta=100.0)
        # Both submitted before either finishes: the second is accepted
        # while the first is still queued/running.
        ack1 = client.submit(first.to_dict())
        ack2 = client.submit(second.to_dict())
        assert {ack1["job"], ack2["job"]} == {"job-1", "job-2"}
        assert ack1["digest"] != ack2["digest"]
        snap1 = client.wait(ack1["job"], timeout=120)
        snap2 = client.wait(ack2["job"], timeout=120)
        assert snap1["completed"] == snap1["total"] == first.size
        assert snap2["completed"] == snap2["total"] == second.size

    def test_live_stats_mid_campaign(self, live_server):
        """Status mid-flight shows partial progress and running aggregates."""
        client, _service = live_server
        sweep = make_sweep(range(4))
        ack = client.submit(sweep.to_dict())
        observed_partial = None
        for _ in range(600):
            snap = client.status(ack["job"])[0]
            if snap["state"] == "running" and 0 < snap["completed"] < snap["total"]:
                observed_partial = snap
                break
        assert observed_partial is not None, "never caught the campaign mid-flight"
        pdr = observed_partial["metrics"].get("pdr")
        assert pdr is not None
        assert 0 < pdr["n"] == observed_partial["completed"] < sweep.size
        client.wait(ack["job"], timeout=120)

    def test_final_stats_match_cold_run(self, live_server):
        client, _service = live_server
        sweep = make_sweep([0, 1, 2])
        snap = client.wait(client.submit(sweep.to_dict())["job"], timeout=120)
        with CampaignRunner() as runner:
            records = runner.run(sweep).records
        values = [record.metrics["pdr"] for record in records]
        expected_mean = sum(values) / len(values)
        assert snap["metrics"]["pdr"]["n"] == len(values)
        assert snap["metrics"]["pdr"]["mean"] == pytest.approx(expected_mean)

    def test_resubmit_same_spec_resumes_from_journal(self, live_server):
        """Digest-keyed journals: an identical spec is a resume, not a re-run."""
        client, _service = live_server
        sweep = make_sweep([0, 1])
        ack1 = client.submit(sweep.to_dict())
        client.wait(ack1["job"], timeout=120)
        ack2 = client.submit(sweep.to_dict())
        assert ack2["journal"] == ack1["journal"]
        snap = client.wait(ack2["job"], timeout=120)
        assert snap["resumed"] == sweep.size
        assert snap["completed"] == sweep.size
        # Backfilled aggregates cover the whole campaign, not just new runs.
        assert snap["metrics"]["pdr"]["n"] == sweep.size


class TestErrors:
    def test_invalid_sweep_rejected_without_job(self, live_server):
        client, service = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"experiment": "not-a-thing"})
        assert excinfo.value.status == 400
        assert service.status() == []

    def test_invalid_backend_options_rejected(self, live_server):
        client, _service = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.submit(make_sweep([0]).to_dict(), options={"warp": 9})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, live_server):
        client, _service = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.status("job-999")
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, live_server):
        client, _service = live_server
        with pytest.raises(ServiceError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_failed_job_reports_error(self, live_server):
        """A campaign that blows up lands in 'failed' with a message, and the
        service keeps serving subsequent jobs."""
        import os

        from repro.service.manifest import sweep_digest

        client, service = live_server
        victim = make_sweep([5, 6])
        # Sabotage: pre-create the victim's journal path as a directory so
        # the journal cannot be opened or created.
        victim_path = os.path.join(
            service.root, f"{sweep_digest(victim)[:12]}.journal.jsonl"
        )
        os.makedirs(victim_path, exist_ok=True)
        ack = client.submit(victim.to_dict())
        with pytest.raises(ServiceError):
            client.wait(ack["job"], timeout=60)
        snap = client.status(ack["job"])[0]
        assert snap["state"] == "failed"
        assert snap["error"]
        # Job isolation: the dispatcher survives and runs the next campaign.
        ack2 = client.submit(make_sweep([0]).to_dict())
        assert client.wait(ack2["job"], timeout=120)["state"] == "done"


class TestHealth:
    def test_health_counts_jobs(self, live_server):
        client, _service = live_server
        assert client.health()["jobs"] == 0
        ack = client.submit(make_sweep([0]).to_dict())
        health = client.health()
        assert health["ok"] is True
        assert health["jobs"] == 1
        client.wait(ack["job"], timeout=120)
