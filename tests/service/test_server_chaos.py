"""Service front end under faults: cancellation, partial jobs, dropped HTTP.

Same live-server harness as ``test_server.py`` (real asyncio stack on an
ephemeral port, real HTTP clients), pointed at the failure paths: the
``DELETE /job/<id>`` route, supervised jobs that end ``partial`` with
quarantine counts and supervision events in their snapshots, and the
chaos harness's ``drop-http`` fault severing a connection mid-request.
"""

from __future__ import annotations

import asyncio
import http.client
import threading

import pytest

from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service.client import ServiceClient, ServiceError
from repro.service.faults import FaultPlan
from repro.service.server import CampaignServer, CampaignService

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}


@pytest.fixture(autouse=True)
def _clean_cache():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()


def make_sweep(seeds, delta=50.0):
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [delta]},
        fixed=FIXED,
        seeds=list(seeds),
    )


def serve(tmp_path, backend_options=None, fault_plan=None):
    """Context-manager-free variant of test_server's fixture so each test
    can pick its own backend options and server fault plan."""
    service = CampaignService(
        str(tmp_path / "root"),
        backend_options=backend_options or {"throttle": 0.05},
    )
    server = CampaignServer(service, fault_plan=fault_plan)
    loop = asyncio.new_event_loop()
    host, port = loop.run_until_complete(server.start())
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    def shutdown():
        service.close()
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=5)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=5)
        loop.close()

    return ServiceClient(host, port), service, shutdown


class TestCancellation:
    def test_cancel_running_job(self, tmp_path):
        client, _service, shutdown = serve(
            tmp_path, backend_options={"throttle": 0.3, "backoff_base": 0.0}
        )
        try:
            ack = client.submit(make_sweep(range(8)).to_dict())
            # Wait until it is actually running, then cancel over HTTP.
            deadline = 50
            while client.status(ack["job"])[0]["state"] == "queued" and deadline:
                deadline -= 1
                asyncio.run(asyncio.sleep(0.1))
            snapshot = client.cancel(ack["job"])
            assert snapshot["state"] in ("running", "cancelled", "done")
            final = client.wait(ack["job"], timeout=60)
            assert final["state"] in ("cancelled", "done")
        finally:
            shutdown()

    def test_cancelled_job_resumes_on_resubmit(self, tmp_path):
        client, _service, shutdown = serve(
            tmp_path, backend_options={"throttle": 0.3, "backoff_base": 0.0}
        )
        try:
            sweep = make_sweep(range(8))
            ack = client.submit(sweep.to_dict())
            while client.status(ack["job"])[0]["state"] == "queued":
                asyncio.run(asyncio.sleep(0.05))
            client.cancel(ack["job"])
            first = client.wait(ack["job"], timeout=60)
            # Resubmitting the same spec resumes its journal and finishes.
            ack2 = client.submit(sweep.to_dict(), options={"throttle": 0.0})
            final = client.wait(ack2["job"], timeout=120)
            assert final["state"] == "done"
            assert final["completed"] == sweep.size
            if first["state"] == "cancelled":
                assert first["completed"] < sweep.size
        finally:
            shutdown()

    def test_cancel_unknown_job_is_404(self, tmp_path):
        client, _service, shutdown = serve(tmp_path)
        try:
            with pytest.raises(ServiceError) as excinfo:
                client.cancel("job-99")
            assert excinfo.value.status == 404
        finally:
            shutdown()


class TestPartialJobs:
    def test_poisoned_job_ends_partial_with_quarantine_count(self, tmp_path):
        client, _service, shutdown = serve(
            tmp_path,
            backend_options={
                "backoff_base": 0.0,
                "max_attempts": 2,
                "faults": "poison@seed=1",
            },
        )
        try:
            ack = client.submit(make_sweep([0, 1, 2]).to_dict())
            snapshot = client.wait(ack["job"], timeout=120)
            assert snapshot["state"] == "partial"
            assert snapshot["quarantined"] == 1
            assert snapshot["completed"] == 2
            kinds = [event["kind"] for event in snapshot["events"]]
            assert "quarantine" in kinds
        finally:
            shutdown()


class TestDropHttp:
    def test_dropped_connection_surfaces_without_retry(self, tmp_path):
        plan = FaultPlan.from_spec("drop-http")
        client, _service, shutdown = serve(tmp_path, fault_plan=plan)
        fail_fast = ServiceClient(client.host, client.port, retries=1)
        try:
            # With retries disabled the dropped connection surfaces as a
            # transient network error (exactly once) …
            with pytest.raises((ServiceError, ConnectionError, OSError,
                                http.client.HTTPException)):
                fail_fast.health()
            # … and the very next request succeeds: clients see a clean
            # error, never a half-written response.
            assert fail_fast.health()["ok"] is True
        finally:
            shutdown()

    def test_default_client_retries_through_drop(self, tmp_path):
        plan = FaultPlan.from_spec("drop-http")
        client, _service, shutdown = serve(tmp_path, fault_plan=plan)
        try:
            # The default client's bounded retry absorbs the one dropped
            # connection — a wait/status poll loop survives a server blip.
            assert client.health()["ok"] is True
        finally:
            shutdown()
