"""Supervision chaos matrix: injected faults never break bit-identity.

The contract under test is the fault-tolerance design's hard one: a
supervised campaign hit by worker crashes, run hangs, torn journal
tails or poison runs either completes with records bit-identical to a
fault-free run, or ends ``partial`` with every missing run explained in
the quarantine file — never a hang, never an unhandled traceback.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.campaign.spec import Sweep
from repro.scenario import ARTIFACT_CACHE
from repro.service import faults
from repro.service.checkpoint import run_checkpointed
from repro.service.faults import FaultPlan
from repro.service.supervisor import (
    RetryPolicy,
    load_quarantine,
    make_supervised,
    quarantine_path,
    retry_quarantined,
)

FIXED = {
    "packets_per_node": 2,
    "warmup": 0.2,
    "drain_time": 0.1,
    "management_period": 0.5,
}

#: Supervision options shared by every chaos run: no backoff sleeps (the
#: retries themselves are the point), a short run timeout so hang faults
#: are bounded by the watchdog rather than the test timeout, and real
#: worker processes (crash faults only fire in marked workers — with
#: jobs=1 the pool executes in-process and they are skipped by design).
FAST = {"backoff_base": 0.0, "run_timeout": 3.0, "jobs": 2}


@pytest.fixture(autouse=True)
def _clean_state():
    ARTIFACT_CACHE.clear()
    yield
    ARTIFACT_CACHE.clear()
    faults.install(None)


def make_sweep(seeds=(0, 1, 2)):
    return Sweep(
        experiment="hidden-node",
        macs=["unslotted-csma"],
        grid={"delta": [50.0, 100.0]},
        fixed=FIXED,
        seeds=list(seeds),
    )


def run_supervised(tmp_path, name, options, sweep=None):
    backend = make_supervised(dict(options))
    try:
        outcome = run_checkpointed(
            sweep or make_sweep(), str(tmp_path / name), backend=backend, collect=True
        )
    finally:
        backend.close()
    return outcome, backend


def baseline_records(tmp_path):
    outcome, _backend = run_supervised(tmp_path, "baseline.jsonl", {"backoff_base": 0.0})
    assert outcome.status == "complete"
    return [record.to_dict() for record in outcome.records]


class TestFaultFree:
    def test_supervised_matches_unsupervised(self, tmp_path):
        supervised, backend = run_supervised(tmp_path, "sup.jsonl", FAST)
        raw = run_checkpointed(
            make_sweep(), str(tmp_path / "raw.jsonl"), collect=True
        )
        assert supervised.status == "complete"
        assert backend.events == []
        assert [r.to_dict() for r in supervised.records] == [
            r.to_dict() for r in raw.records
        ]


class TestChaosMatrix:
    @pytest.mark.parametrize(
        "fault_spec",
        [
            "crash@seed=2",
            "hang:60@seed=0",
            "torn@after=3",
            "crash@seed=1;torn@after=2",
        ],
        ids=["crash", "hang", "torn-tail", "crash+torn"],
    )
    def test_faults_recover_bit_identically(self, tmp_path, fault_spec):
        baseline = baseline_records(tmp_path)
        outcome, backend = run_supervised(
            tmp_path, "chaos.jsonl", {**FAST, "faults": fault_spec}
        )
        assert outcome.status == "complete"
        assert outcome.quarantined == []
        assert [r.to_dict() for r in outcome.records] == baseline
        # At least one supervision event must record what happened; the
        # journal carries the same audit trail for post-mortems.
        assert any(e["kind"] == "retry" for e in backend.events)

    def test_degrades_to_serial_when_tier_budget_exhausted(self, tmp_path):
        baseline = baseline_records(tmp_path)
        # With a one-attempt tier budget the pool's crash immediately
        # exhausts it: the supervisor must fall back to the serial tier
        # and still finish the campaign there.
        outcome, backend = run_supervised(
            tmp_path,
            "degrade.jsonl",
            {**FAST, "faults": "crash@seed=0", "backend_attempts": 1},
        )
        assert outcome.status == "complete"
        kinds = [event["kind"] for event in backend.events]
        assert "degrade" in kinds
        degrade = next(e for e in backend.events if e["kind"] == "degrade")
        assert degrade["to_backend"] == "serial"
        assert [r.to_dict() for r in outcome.records] == baseline


class TestQuarantine:
    def test_poison_runs_quarantined_campaign_partial(self, tmp_path):
        baseline = baseline_records(tmp_path)
        journal = str(tmp_path / "poison.jsonl")
        backend = make_supervised(
            {"backoff_base": 0.0, "faults": "poison@seed=1", "max_attempts": 2}
        )
        try:
            outcome = run_checkpointed(make_sweep(), journal, backend=backend, collect=True)
        finally:
            backend.close()
        assert outcome.status == "partial"
        # seed=1 appears once per delta value: expansion indices 1 and 4.
        assert outcome.quarantined == [1, 4]
        # The healthy runs stream through in expansion order, bit-identical.
        healthy = [d for i, d in enumerate(baseline) if i not in (1, 4)]
        assert [r.to_dict() for r in outcome.records] == healthy

        entries = load_quarantine(quarantine_path(journal))
        assert [entry["index"] for entry in entries] == [1, 4]
        for entry in entries:
            assert entry["seed"] == 1
            assert entry["spec_digest"] == outcome.spec_digest
            assert len(entry["attempts"]) >= 2
            assert "InjectedPoisonError" in entry["traceback"]

    def test_retry_quarantined_completes_bit_identically(self, tmp_path):
        baseline = baseline_records(tmp_path)
        journal = str(tmp_path / "poison.jsonl")
        backend = make_supervised(
            {"backoff_base": 0.0, "faults": "poison@seed=1", "max_attempts": 2}
        )
        try:
            run_checkpointed(make_sweep(), journal, backend=backend)
        finally:
            backend.close()
        # The fault plan is gone on retry (the operator fixed the cause).
        count, outcome = retry_quarantined(
            journal, {"backoff_base": 0.0}, collect=True
        )
        assert count == 2
        assert outcome.status == "complete"
        assert [r.to_dict() for r in outcome.records] == baseline
        # Healing clears the quarantine file.
        assert load_quarantine(quarantine_path(journal)) == []

    def test_still_poisoned_retry_stays_partial(self, tmp_path):
        journal = str(tmp_path / "poison.jsonl")
        options = {"backoff_base": 0.0, "faults": "poison@seed=1", "max_attempts": 2}
        backend = make_supervised(dict(options))
        try:
            run_checkpointed(make_sweep(), journal, backend=backend)
        finally:
            backend.close()
        count, outcome = retry_quarantined(journal, dict(options))
        assert count == 2
        assert outcome.status == "partial"
        assert outcome.quarantined == [1, 4]


class TestCancellation:
    def test_cancel_mid_campaign_then_resume(self, tmp_path):
        baseline = baseline_records(tmp_path)
        journal = str(tmp_path / "cancel.jsonl")
        backend = make_supervised({"backoff_base": 0.0, "throttle": 0.2})
        cancelled = threading.Event()

        def on_record(index, record):
            if not cancelled.is_set():
                cancelled.set()
                backend.cancel()

        try:
            outcome = run_checkpointed(
                make_sweep(), journal, backend=backend, on_record=on_record
            )
        finally:
            backend.close()
        assert outcome.status == "cancelled"
        assert 0 < outcome.executed < 6

        resumed = run_checkpointed(make_sweep(), journal, collect=True)
        assert resumed.status == "complete"
        assert resumed.resumed == outcome.executed
        assert [r.to_dict() for r in resumed.records] == baseline


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_max=4.0, jitter=0.1)
        first = [policy.backoff(n, random.Random(7)) for n in range(1, 8)]
        second = [policy.backoff(n, random.Random(7)) for n in range(1, 8)]
        assert first == second
        assert all(delay <= 4.0 * 1.1 for delay in first)
        assert first[0] < first[1] < first[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backend_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(run_timeout=-1.0)


class TestOptionsPlumbing:
    def test_make_supervised_rejects_unknown_backend_options(self):
        with pytest.raises(ValueError):
            make_supervised({"bogus": 1}).close()

    def test_no_supervise_returns_raw_backend(self):
        backend = make_supervised({"supervise": False})
        try:
            assert type(backend).__name__ == "PoolBackend"
        finally:
            backend.close()

    def test_faults_accepts_spec_string_and_dict(self):
        plan = FaultPlan.from_spec("poison@seed=1")
        for faults_option in ("poison@seed=1", plan.to_dict()):
            backend = make_supervised({"faults": faults_option})
            try:
                assert backend.fault_plan is not None
            finally:
                backend.close()
