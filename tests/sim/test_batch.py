"""Unit tests for the lockstep seed-batch executor (`repro.sim.batch`)."""

from __future__ import annotations

import pytest

import repro.sim.batch as batch_mod
from repro.experiments.testbed import prepare_star
from repro.sim.batch import SeedBatchExecutor, batch_compatibility_error

FAST = {"packets_per_node": 2, "warmup": 0.5, "delta": 40.0, "max_duration": 4.0}


def _lanes(seeds, **overrides):
    kwargs = {**FAST, **overrides}
    return [prepare_star(mac="qma", seed=seed, **kwargs) for seed in seeds]


def _scalar_sets(reports):
    return [(r.scalars, r.tables) for r in reports]


class TestExecutor:
    def test_batched_equals_forced_serial(self):
        expected = _scalar_sets(SeedBatchExecutor(force_serial=True).run(_lanes([0, 1, 2])))
        executor = SeedBatchExecutor()
        got = _scalar_sets(executor.run(_lanes([0, 1, 2])))
        assert executor.last_fallback_reason is None
        assert got == expected

    def test_events_executed_parity(self):
        serial = _lanes([0])
        serial[0].run()
        batched = _lanes([0, 1])
        SeedBatchExecutor().run(batched)
        assert batched[0].sim.events_executed == serial[0].sim.events_executed

    def test_single_lane_falls_back(self):
        executor = SeedBatchExecutor()
        executor.run(_lanes([0]))
        assert executor.last_fallback_reason == "single lane"

    def test_empty_batch(self):
        assert SeedBatchExecutor().run([]) == []

    def test_unsupported_mac_falls_back(self):
        lanes = [
            prepare_star(mac="unslotted-csma", seed=seed, **FAST) for seed in (0, 1)
        ]
        reason = batch_compatibility_error(lanes)
        assert reason is not None and "MAC kind" in reason
        executor = SeedBatchExecutor()
        reports = executor.run(lanes)
        assert executor.last_fallback_reason == reason
        assert len(reports) == 2

    def test_heterogeneous_end_times_fall_back(self):
        lanes = _lanes([0]) + _lanes([1], max_duration=3.0)
        assert batch_compatibility_error(lanes) == "lanes have different end times"

    def test_already_run_lane_falls_back(self):
        lanes = _lanes([0, 1])
        lanes[0].sim.run_until(0.1)
        assert batch_compatibility_error(lanes) == "lane has already been run"
        # The other, untouched lane still finishes correctly via serial.
        reports = SeedBatchExecutor().run(lanes)
        assert len(reports) == 2

    def test_heterogeneous_qma_parameters_fall_back(self):
        from repro.core.config import QmaConfig

        lanes = _lanes([0]) + _lanes([1], qma_config=QmaConfig(learning_rate=0.25))
        assert batch_compatibility_error(lanes) == "lanes have heterogeneous QMA parameters"

    def test_without_numpy_everything_degrades_serially(self, monkeypatch):
        expected = _scalar_sets(SeedBatchExecutor(force_serial=True).run(_lanes([0, 1])))
        monkeypatch.setattr(batch_mod, "np", None)
        executor = SeedBatchExecutor()
        got = _scalar_sets(executor.run(_lanes([0, 1])))
        assert executor.last_fallback_reason == "numpy is not available"
        assert got == expected


class TestBatchedMtStream:
    def test_replicates_cpython_random(self):
        import random

        from repro.sim.batch import _BatchStore, BatchedMtStream

        reference = random.Random(1234)
        stream = random.Random(1234)

        class _Store:
            WORD_BUFFER = _BatchStore.WORD_BUFFER

        # Build a minimal store shim around the transplant helper.
        import numpy as np

        from repro.sim.rng import transplant_bit_generator

        store = _Store()
        store.words = np.zeros((1, 1, store.WORD_BUFFER), dtype=np.uint32)
        store.cursor = np.zeros((1, 1), dtype=np.int64)
        store.bitgens = [[transplant_bit_generator(stream)]]
        store.words[0, 0] = store.bitgens[0][0].random_raw(store.WORD_BUFFER)

        def refill(lane, node):
            batch_mod._BatchStore.refill_words(store, lane, node)

        store.refill_words = refill
        batched = BatchedMtStream(store, 0, 0)
        actions = ["a", "b", "c"]
        for _ in range(500):
            assert batched.random() == reference.random()
            assert batched.choice(actions) == reference.choice(actions)
        # Crossing the refill boundary keeps the sequence aligned.
        for _ in range(200):
            assert batched.getrandbits(32) == reference.getrandbits(32)
