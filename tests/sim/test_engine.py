"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_schedule_and_run_until_executes_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run_until(10.0)
    assert fired == ["a", "b", "c"]
    assert sim.now == 10.0


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for label in ("first", "second", "third"):
        sim.schedule(1.0, fired.append, label)
    sim.run_until(1.0)
    assert fired == ["first", "second", "third"]


def test_run_until_does_not_execute_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "late")
    sim.run_until(4.0)
    assert fired == []
    assert sim.pending_events() == 1
    sim.run_until(6.0)
    assert fired == ["late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run_until(2.0)
    assert fired == []
    assert not event.pending


def test_schedule_in_the_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_events_scheduled_during_execution_run_in_order():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.5, lambda: fired.append("inner"))

    sim.schedule(1.0, outer)
    sim.schedule(2.0, lambda: fired.append("later"))
    sim.run_until(3.0)
    assert fired == ["outer", "inner", "later"]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run_until(10.0)
    assert fired == ["a"]
    assert sim.now == 2.0


def test_run_executes_until_queue_empty():
    sim = Simulator()
    count = []
    sim.schedule(1.0, count.append, 1)
    sim.schedule(4.0, count.append, 2)
    sim.run()
    assert count == [1, 2]
    assert sim.now == 4.0


def test_events_executed_counter():
    sim = Simulator()
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    sim.run_until(10.0)
    assert sim.events_executed == 3


def test_trace_recording(sim_trace=None):
    sim = Simulator(trace=True)
    sim.schedule(1.0, lambda: sim.record("test", value=7))
    sim.run_until(2.0)
    records = sim.tracer.by_category("test")
    assert len(records) == 1
    assert records[0]["value"] == 7
    assert records[0].time == 1.0


def test_invalid_end_time_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(1.0)
