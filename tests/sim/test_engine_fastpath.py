"""Tests for the allocation-lean scheduler fast path.

``schedule_fast`` / ``schedule_at_fast`` share the sequence counter with
the general path, so mixing both must preserve the deterministic
``(time, seq)`` execution order; fired fast events are recycled through a
freelist; ``pending_events`` is an O(1) live counter; and lazily-cancelled
heap entries are compacted away once they dominate the queue.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_fast_and_generic_events_share_one_ordering():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "generic-a")
    sim.schedule_fast(1.0, fired.append, "fast-a")
    sim.schedule_fast(0.5, fired.append, "fast-early")
    sim.schedule(1.0, fired.append, "generic-b")
    sim.schedule_at_fast(0.75, fired.append, "fast-at")
    sim.run_until(2.0)
    # Same-time events fire in scheduling order across both paths.
    assert fired == ["fast-early", "fast-at", "generic-a", "fast-a", "generic-b"]


def test_schedule_fast_without_argument_calls_bare():
    sim = Simulator()
    calls = []
    sim.schedule_fast(1.0, lambda: calls.append("bare"))
    sim.run_until(2.0)
    assert calls == ["bare"]


def test_schedule_fast_rejects_negative_delay_and_past_times():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_fast(-0.1, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_at_fast(1.0, lambda: None)


def test_fired_fast_events_are_recycled():
    sim = Simulator()
    for _ in range(10):
        sim.schedule_fast(1.0, lambda: None)
    sim.run_until(2.0)
    shells = list(sim._free)
    assert len(shells) == 10
    # The next fast schedules reuse the recycled shells, newest first.
    sim.schedule_fast(1.0, lambda: None)
    assert sim._free == shells[:-1]


def test_recycled_shells_keep_events_ordered():
    """A callback scheduling from within its own firing reuses shells
    without disturbing the (time, seq) order."""
    sim = Simulator()
    fired = []

    def chain(label):
        fired.append(label)
        if len(fired) < 5:
            sim.schedule_fast(0.5, chain, f"hop-{len(fired)}")

    sim.schedule_fast(0.5, chain, "hop-0")
    sim.run_until(10.0)
    assert fired == [f"hop-{i}" for i in range(5)]


def test_pending_events_is_a_live_counter():
    sim = Simulator()
    events = [sim.schedule(1.0 + i, lambda: None) for i in range(3)]
    sim.schedule_fast(1.0, lambda: None)
    assert sim.pending_events() == 4
    events[0].cancel()
    assert sim.pending_events() == 3
    events[0].cancel()  # double cancel must not double count
    assert sim.pending_events() == 3
    sim.run_until(10.0)
    assert sim.pending_events() == 0


def test_cancel_after_firing_does_not_corrupt_counter():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run_until(2.0)
    event.cancel()  # no-op on a fired event
    assert sim.pending_events() == 0


def test_heap_compaction_drops_cancelled_entries():
    sim = Simulator()
    keep = []
    cancelled = [sim.schedule(5.0, lambda: None) for _ in range(200)]
    survivor = sim.schedule(6.0, keep.append, "survivor")
    for event in cancelled:
        event.cancel()
    # Far more than COMPACT_MIN_CANCELLED dead entries: compaction must
    # have removed the bulk of them (a sub-threshold tail may remain).
    assert len(sim._queue) < 64
    assert sim.pending_events() == 1
    sim.run_until(10.0)
    assert keep == ["survivor"]
    assert survivor.fired


def test_compaction_during_drain_keeps_order():
    """Cancelling en masse from inside a callback (which triggers in-place
    compaction) must not disturb the events still due."""
    sim = Simulator()
    fired = []
    doomed = [sim.schedule(5.0, fired.append, "doomed") for _ in range(150)]

    def cancel_all():
        fired.append("cancel")
        for event in doomed:
            event.cancel()

    sim.schedule(1.0, cancel_all)
    sim.schedule(2.0, fired.append, "after")
    sim.schedule_fast(3.0, fired.append, "fast-after")
    sim.run_until(10.0)
    assert fired == ["cancel", "after", "fast-after"]
    assert sim.pending_events() == 0


def test_events_executed_counts_both_paths():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.schedule_fast(1.0, lambda: None)
    sim.run_until(2.0)
    assert sim.events_executed == 2
