"""Unit tests for RNG streams, periodic processes and the trace recorder."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecorder


class TestRngRegistry:
    def test_streams_are_deterministic_given_master_seed(self):
        a = RngRegistry(7).stream("mac")
        b = RngRegistry(7).stream("mac")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_different_sequences(self):
        registry = RngRegistry(7)
        seq_a = [registry.stream("a").random() for _ in range(5)]
        seq_b = [registry.stream("b").random() for _ in range(5)]
        assert seq_a != seq_b

    def test_different_master_seeds_give_different_sequences(self):
        seq_a = [RngRegistry(1).stream("x").random() for _ in range(5)]
        seq_b = [RngRegistry(2).stream("x").random() for _ in range(5)]
        assert seq_a != seq_b

    def test_stream_is_cached(self):
        registry = RngRegistry(0)
        assert registry.stream("x") is registry.stream("x")
        assert "x" in registry
        assert len(registry) == 1

    def test_reseed_resets_streams(self):
        registry = RngRegistry(1)
        stream = registry.stream("x")
        first = [stream.random() for _ in range(3)]
        registry.reseed(1)
        assert [stream.random() for _ in range(3)] == first


class TestPeriodicProcess:
    def test_fixed_period_fires_repeatedly(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.run_until(5.5)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert process.invocations == 5

    def test_callable_period(self):
        sim = Simulator()
        times = []
        periods = iter([1.0, 2.0, 3.0, 100.0])
        process = PeriodicProcess(sim, lambda: next(periods), lambda: times.append(sim.now))
        process.start()
        sim.run_until(10.0)
        assert times == [1.0, 3.0, 6.0]

    def test_stop_cancels_future_invocations(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 1.0, lambda: times.append(sim.now))
        process.start()
        sim.schedule(2.5, process.stop)
        sim.run_until(10.0)
        assert times == [1.0, 2.0]
        assert not process.running

    def test_double_start_raises(self):
        sim = Simulator()
        process = PeriodicProcess(sim, 1.0, lambda: None)
        process.start()
        with pytest.raises(SimulationError):
            process.start()

    def test_start_delay_overrides_first_period(self):
        sim = Simulator()
        times = []
        process = PeriodicProcess(sim, 2.0, lambda: times.append(sim.now), start_delay=0.5)
        process.start()
        sim.run_until(5.0)
        assert times == [0.5, 2.5, 4.5]


class TestTraceRecorder:
    def test_filter_by_category(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "a", {"x": 1})
        recorder.record(2.0, "b", {"x": 2})
        recorder.record(3.0, "a", {"x": 3})
        assert [r["x"] for r in recorder.by_category("a")] == [1, 3]
        assert recorder.categories() == ["a", "b"]
        assert len(recorder) == 3

    def test_max_records_drops_excess(self):
        recorder = TraceRecorder(max_records=2)
        for i in range(5):
            recorder.record(float(i), "c", {"i": i})
        assert len(recorder) == 2
        assert recorder.dropped == 3

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(0.0, "a", {})
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.get_default_missing() if hasattr(recorder, "get_default_missing") else True
