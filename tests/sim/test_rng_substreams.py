"""Tests for seed substreams and the MT19937 state transplant."""

from __future__ import annotations

import random

import pytest

from repro.sim.rng import mt_stream_state, seed_substreams, transplant_bit_generator


class TestSeedSubstreams:
    def test_reproducible(self):
        a = seed_substreams(42, 4)
        b = seed_substreams(42, 4)
        for left, right in zip(a, b):
            assert left.random(8).tolist() == right.random(8).tolist()

    def test_substream_i_stable_as_n_grows(self):
        """Growing ``n`` appends streams; it never perturbs earlier ones."""
        small = seed_substreams(7, 2)
        large = seed_substreams(7, 6)
        for left, right in zip(small, large):
            assert left.random(8).tolist() == right.random(8).tolist()

    def test_substreams_differ_from_each_other(self):
        streams = seed_substreams(0, 3)
        draws = [tuple(s.random(8).tolist()) for s in streams]
        assert len(set(draws)) == 3

    def test_different_seeds_differ(self):
        (a,) = seed_substreams(1, 1)
        (b,) = seed_substreams(2, 1)
        assert a.random(8).tolist() != b.random(8).tolist()

    def test_not_plain_seed_offsets(self):
        """Substreams are SeedSequence spawns, not ``seed + i`` reseeds."""
        import numpy.random as npr

        substreams = seed_substreams(5, 3)
        offsets = [npr.default_rng(5 + i) for i in range(3)]
        assert all(
            s.random(4).tolist() != o.random(4).tolist()
            for s, o in zip(substreams, offsets)
        )

    def test_zero_streams(self):
        assert seed_substreams(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            seed_substreams(0, -1)


class TestTransplant:
    def test_state_roundtrip(self):
        stream = random.Random(99)
        stream.random()  # advance past the freshly seeded position
        key, pos = mt_stream_state(stream)
        assert len(key) == 624
        assert 0 <= pos <= 624

    def test_word_sequence_matches_getrandbits(self):
        reference = random.Random(2024)
        transplanted = random.Random(2024)
        for _ in range(100):  # desynchronise pos from the seed position
            reference.random()
            transplanted.random()
        bit_generator = transplant_bit_generator(transplanted)
        words = bit_generator.random_raw(1000)
        assert [int(w) for w in words] == [
            reference.getrandbits(32) for _ in range(1000)
        ]

    def test_random_reconstruction(self):
        """Two raw words recombine into random.Random.random() exactly."""
        reference = random.Random(7)
        bit_generator = transplant_bit_generator(random.Random(7))
        words = bit_generator.random_raw(20)
        for i in range(10):
            hi, lo = int(words[2 * i]) >> 5, int(words[2 * i + 1]) >> 6
            assert (hi * 67108864.0 + lo) / 9007199254740992.0 == reference.random()
