"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_table4_command_prints_reward_table(capsys):
    assert main(["table4"]) == 0
    output = capsys.readouterr().out
    assert "B S B" in output
    assert "8" in output


def test_list_command_prints_registries(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for mac in ("qma", "slotted-csma", "unslotted-csma", "slotted-aloha", "aloha-q", "tdma"):
        assert mac in output
    for model in ("unit-disk", "log-distance", "fading"):
        assert model in output
    # Config defaults are shown for MACs and propagation models.
    assert "num_subslots=54" in output
    assert "slots_per_frame=10" in output
    assert "shadowing_sigma_db=4.0" in output
    assert "communication_range=60.0" in output
    for topology in ("hidden-node", "iotlab-tree", "iotlab-star", "concentric"):
        assert topology in output
    # The metric-collector registry is listed with its provided scalars.
    for collector in ("pdr", "delay", "queue", "attempts", "slots", "convergence", "dsme"):
        assert collector in output
    assert "average_queue_level" in output
    assert "secondary_pdr" in output


def test_sweep_command_resolves_mac_and_propagation_grid_axes(capsys):
    assert (
        main(
            [
                "sweep",
                "hidden-node",
                "--grid",
                "mac=qma,tdma",
                "--grid",
                "propagation=unit-disk,fading",
                "--set",
                "packets_per_node=8",
                "--set",
                "warmup=5",
                "--metrics",
                "pdr",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "running 4 scenarios" in output
    assert "tdma" in output
    assert "fading" in output and "unit-disk" in output


def test_sweep_command_rejects_unknown_mac_in_grid():
    with pytest.raises(SystemExit):
        main(["sweep", "hidden-node", "--grid", "mac=not-a-mac"])


def test_sweep_command_resolves_metrics_grid_axis(capsys):
    assert (
        main(
            [
                "sweep",
                "hidden-node",
                "--grid",
                "metrics=pdr,attempts",
                "--set",
                "packets_per_node=8",
                "--set",
                "warmup=5",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "pdr" in output and "transmission_attempts" in output
    assert "average_delay" not in output  # delay collector not selected


def test_sweep_command_rejects_unknown_collector_in_grid():
    with pytest.raises(SystemExit, match="metric collector"):
        main(["sweep", "hidden-node", "--grid", "metrics=not-a-collector"])


def test_sweep_command_rejects_collectors_flag_and_grid_axis_together():
    with pytest.raises(SystemExit, match="not both"):
        main(
            [
                "sweep",
                "hidden-node",
                "--collectors",
                "pdr",
                "--grid",
                "metrics=pdr",
            ]
        )


def test_sweep_command_streams_jsonl(tmp_path, capsys):
    import json as json_module

    path = tmp_path / "records.jsonl"
    assert (
        main(
            [
                "sweep",
                "hidden-node",
                "--grid",
                "metrics=pdr,delay",
                "--set",
                "packets_per_node=8",
                "--set",
                "warmup=5",
                "--seeds",
                "2",
                "--jsonl",
                str(path),
            ]
        )
        == 0
    )
    lines = [line for line in path.read_text().splitlines() if line.strip()]
    # Leading _meta line (effective pool configuration) plus one line per record.
    assert len(lines) == 3
    meta = json_module.loads(lines[0])["_meta"]
    assert meta["pool"] == {
        "jobs": 1, "chunksize": 1, "pool": "serial", "build_cache": True,
        "batch_seeds": 1,
    }
    entry = json_module.loads(lines[1])
    assert entry["scenario"]["metrics"] == ["pdr", "delay"]
    assert "pdr" in entry["metrics"] and "average_delay" in entry["metrics"]
    assert str(path) in capsys.readouterr().out

    from repro.campaign.frame import iter_jsonl

    records = list(iter_jsonl(str(path)))  # _meta line is skipped on read-back
    assert len(records) == 2


def test_sweep_metric_validation_respects_collector_selection():
    # average_delay is not provided by the pdr collector alone.
    with pytest.raises(SystemExit, match="unknown metric"):
        main(
            [
                "sweep",
                "hidden-node",
                "--grid",
                "metrics=pdr",
                "--metrics",
                "average_delay",
            ]
        )


def test_fig26_command_prints_curve(capsys):
    assert main(["fig26", "--probabilities", "0.5", "1.0"]) == 0
    output = capsys.readouterr().out
    assert "3.00" in output


def test_fig7_command_small_run(capsys):
    assert (
        main(
            [
                "fig7",
                "--macs",
                "qma",
                "--deltas",
                "10",
                "--packets",
                "15",
                "--warmup",
                "5",
                "--repetitions",
                "1",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "qma" in output
    assert "pdr" in output


def test_sweep_command_prints_aggregated_metrics(capsys):
    assert (
        main(
            [
                "sweep",
                "hidden-node",
                "--macs",
                "qma",
                "--grid",
                "delta=10,25",
                "--set",
                "packets_per_node=15",
                "--set",
                "warmup=5",
                "--seeds",
                "2",
                "--metrics",
                "pdr",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "running 4 scenarios" in output
    assert "pdr" in output
    assert "qma" in output


def test_sweep_command_exports_json_and_csv(tmp_path, capsys):
    json_path = tmp_path / "records.json"
    csv_path = tmp_path / "records.csv"
    assert (
        main(
            [
                "sweep",
                "hidden-node",
                "--macs",
                "qma",
                "--grid",
                "delta=10",
                "--set",
                "packets_per_node=10",
                "--set",
                "warmup=5",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        == 0
    )
    import csv as csv_module
    import json as json_module

    data = json_module.loads(json_path.read_text())
    assert len(data["records"]) == 1
    assert data["records"][0]["scenario"]["mac"] == "qma"
    assert "pdr" in data["records"][0]["metrics"]
    with open(csv_path, newline="") as handle:
        rows = list(csv_module.DictReader(handle))
    assert len(rows) == 1
    assert 0.0 <= float(rows[0]["pdr"]) <= 1.0
    output = capsys.readouterr().out
    assert str(json_path) in output and str(csv_path) in output


def test_sweep_command_parallel_jobs(capsys):
    assert (
        main(
            [
                "sweep",
                "scalability",
                "--macs",
                "unslotted-csma",
                "--grid",
                "rings=1",
                "--set",
                "duration=40",
                "--set",
                "warmup=20",
                "--jobs",
                "2",
                "--metrics",
                "secondary_pdr",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "secondary_pdr" in output


def test_sweep_command_rejects_malformed_grid():
    with pytest.raises(SystemExit):
        main(["sweep", "hidden-node", "--grid", "delta"])


def test_sweep_command_chunksize_and_pool_config(tmp_path, capsys):
    import json as json_module

    json_path = tmp_path / "records.json"
    assert (
        main(
            [
                "sweep",
                "hidden-node",
                "--macs",
                "qma",
                "--grid",
                "delta=10",
                "--set",
                "packets_per_node=8",
                "--set",
                "warmup=5",
                "--seeds",
                "4",
                "--jobs",
                "2",
                "--chunksize",
                "2",
                "--json",
                str(json_path),
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "jobs=2 chunksize=2 pool=persistent" in output
    document = json_module.loads(json_path.read_text())
    assert document["meta"]["pool"] == {
        "jobs": 2, "chunksize": 2, "pool": "persistent", "build_cache": True,
        "batch_seeds": 1,
    }
    assert len(document["records"]) == 4


def test_sweep_command_no_build_cache(tmp_path, capsys):
    """--no-build-cache runs (bit-identical) and is reported in the meta."""
    import json as json_module

    docs = {}
    for flag, label in (((), "on"), (("--no-build-cache",), "off")):
        json_path = tmp_path / f"records-{label}.json"
        args = [
            "sweep", "hidden-node", "--macs", "qma",
            "--grid", "delta=10",
            "--set", "packets_per_node=6", "--set", "warmup=2",
            "--seeds", "2", "--json", str(json_path), *flag,
        ]
        assert main(args) == 0
        docs[label] = json_module.loads(json_path.read_text())
    assert docs["on"]["meta"]["pool"]["build_cache"] is True
    assert docs["off"]["meta"]["pool"]["build_cache"] is False
    assert docs["on"]["records"] == docs["off"]["records"]


def test_sweep_command_rejects_bad_chunksize():
    with pytest.raises(SystemExit):
        main(["sweep", "hidden-node", "--grid", "delta=10", "--chunksize", "0"])
    with pytest.raises(SystemExit):
        main(["sweep", "hidden-node", "--grid", "delta=10", "--chunksize", "soon"])


def test_fig7_accepts_jobs_flag(capsys):
    assert (
        main(
            [
                "fig7",
                "--macs",
                "qma",
                "--deltas",
                "10",
                "--packets",
                "10",
                "--warmup",
                "5",
                "--repetitions",
                "2",
                "--jobs",
                "2",
            ]
        )
        == 0
    )
    assert "pdr" in capsys.readouterr().out


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["does-not-exist"])


def test_parser_has_all_figure_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in (
        "table4", "fig7", "fig12", "slots", "testbed", "fig21", "fig26", "sweep", "list",
    ):
        assert command in help_text


def test_sweep_checkpoint_runs_then_resumes(tmp_path, capsys):
    """sweep --checkpoint journals every run; a re-run resumes, not recomputes."""
    journal = str(tmp_path / "campaign.journal.jsonl")
    argv = [
        "sweep", "hidden-node",
        "--macs", "unslotted-csma",
        "--grid", "delta=50,100",
        "--set", "packets_per_node=2",
        "--set", "warmup=0.2",
        "--seeds", "2",
        "--checkpoint", journal,
    ]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert "executed 4" in first
    assert "resumed 0" in first
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "resumed 4" in second
    assert "executed 0" in second
    # The aggregate tables of the cold run and the resume are identical.
    assert first.split("resumed 0 completed")[0] != ""
    assert first.splitlines()[-8:] == second.splitlines()[-8:]


def test_sweep_checkpoint_rejects_other_spec(tmp_path):
    journal = str(tmp_path / "campaign.journal.jsonl")
    base = [
        "sweep", "hidden-node", "--macs", "unslotted-csma",
        "--set", "packets_per_node=2", "--set", "warmup=0.2",
        "--checkpoint", journal,
    ]
    assert main(base + ["--seeds", "2"]) == 0
    with pytest.raises(SystemExit, match="refusing to mix campaigns"):
        main(base + ["--seeds", "3"])


def test_resume_command_reads_sweep_from_journal(tmp_path, capsys):
    journal = str(tmp_path / "campaign.journal.jsonl")
    assert main([
        "sweep", "hidden-node", "--macs", "unslotted-csma",
        "--grid", "delta=50",
        "--set", "packets_per_node=2", "--set", "warmup=0.2",
        "--seeds", "2", "--checkpoint", journal,
    ]) == 0
    capsys.readouterr()
    assert main(["resume", journal]) == 0
    output = capsys.readouterr().out
    assert "resuming 0 run(s)" in output
    assert "resumed 2 completed" in output


def test_resume_command_rejects_missing_journal(tmp_path):
    with pytest.raises(SystemExit, match="error"):
        main(["resume", str(tmp_path / "nope.jsonl")])


def test_sweep_checkpoint_with_shards(tmp_path, capsys):
    """--checkpoint --shards executes through subprocess shard workers."""
    journal = str(tmp_path / "campaign.journal.jsonl")
    assert main([
        "sweep", "hidden-node", "--macs", "unslotted-csma",
        "--grid", "delta=50,100",
        "--set", "packets_per_node=2", "--set", "warmup=0.2",
        "--seeds", "1", "--checkpoint", journal, "--shards", "2",
    ]) == 0
    output = capsys.readouterr().out
    assert "backend shard" in output
    assert "executed 2" in output


def test_sweep_with_injected_poison_exits_4_and_retry_quarantined_heals(
    tmp_path, capsys
):
    """The partial-campaign exit contract: poison -> exit 4 -> retry -> 0."""
    journal = str(tmp_path / "campaign.journal.jsonl")
    base = [
        "sweep", "hidden-node", "--macs", "unslotted-csma",
        "--grid", "delta=50",
        "--set", "packets_per_node=2", "--set", "warmup=0.2",
        "--seeds", "2", "--checkpoint", journal,
    ]
    with pytest.raises(SystemExit) as excinfo:
        main(base + ["--inject-faults", "poison@seed=1", "--retries", "2"])
    assert excinfo.value.code == 4
    output = capsys.readouterr()
    assert "PARTIAL" in output.err
    assert "quarantined" in output.err

    assert main(["retry-quarantined", journal]) == 0
    output = capsys.readouterr().out
    assert "campaign complete" in output

    assert main(["retry-quarantined", journal]) == 0
    assert "no quarantined runs" in capsys.readouterr().out


def test_compact_command_seals_and_resume_replays(tmp_path, capsys):
    journal = str(tmp_path / "campaign.journal.jsonl")
    assert main([
        "sweep", "hidden-node", "--macs", "unslotted-csma",
        "--grid", "delta=50",
        "--set", "packets_per_node=2", "--set", "warmup=0.2",
        "--seeds", "2", "--checkpoint", journal,
    ]) == 0
    capsys.readouterr()
    assert main(["compact", journal]) == 0
    assert "sealed segment" in capsys.readouterr().out
    assert main(["compact", journal]) == 0
    assert "nothing to compact" in capsys.readouterr().out
    assert main(["resume", journal]) == 0
    assert "resumed 2 completed" in capsys.readouterr().out


def test_no_supervise_flag_fails_fast_on_poison(tmp_path):
    """--no-supervise restores the pre-supervision abort-on-failure path."""
    journal = str(tmp_path / "campaign.journal.jsonl")
    from repro.service import faults
    from repro.service.faults import InjectedPoisonError

    try:
        with pytest.raises(InjectedPoisonError):
            main([
                "sweep", "hidden-node", "--macs", "unslotted-csma",
                "--grid", "delta=50",
                "--set", "packets_per_node=2", "--set", "warmup=0.2",
                "--seeds", "2", "--checkpoint", journal,
                "--inject-faults", "poison@seed=1", "--no-supervise",
            ])
    finally:
        faults.install(None)


def test_cancel_command_requires_running_service():
    with pytest.raises(SystemExit, match="error"):
        main(["cancel", "job-1", "--port", "1"])
