"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_table4_command_prints_reward_table(capsys):
    assert main(["table4"]) == 0
    output = capsys.readouterr().out
    assert "B S B" in output
    assert "8" in output


def test_fig26_command_prints_curve(capsys):
    assert main(["fig26", "--probabilities", "0.5", "1.0"]) == 0
    output = capsys.readouterr().out
    assert "3.00" in output


def test_fig7_command_small_run(capsys):
    assert (
        main(
            [
                "fig7",
                "--macs",
                "qma",
                "--deltas",
                "10",
                "--packets",
                "15",
                "--warmup",
                "5",
                "--repetitions",
                "1",
            ]
        )
        == 0
    )
    output = capsys.readouterr().out
    assert "qma" in output
    assert "pdr" in output


def test_parser_rejects_unknown_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["does-not-exist"])


def test_parser_has_all_figure_commands():
    parser = build_parser()
    help_text = parser.format_help()
    for command in ("table4", "fig7", "fig12", "slots", "testbed", "fig21", "fig26"):
        assert command in help_text
