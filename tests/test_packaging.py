"""Packaging smoke tests: entry points and project metadata."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _src_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    return env


def test_python_m_repro_cli_help_exits_zero():
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", "--help"],
        capture_output=True,
        text=True,
        env=_src_env(),
        timeout=60,
    )
    assert result.returncode == 0
    assert "qma-repro" in result.stdout
    assert "sweep" in result.stdout


def test_pyproject_declares_console_entry_point():
    pyproject = REPO_ROOT / "pyproject.toml"
    assert pyproject.is_file()
    text = pyproject.read_text(encoding="utf-8")
    assert 'qma-repro = "repro.cli:main"' in text
    try:
        import tomllib
    except ImportError:  # Python 3.10
        return
    data = tomllib.loads(text)
    assert data["project"]["name"] == "qma-repro"
    assert data["project"]["scripts"]["qma-repro"] == "repro.cli:main"
    assert data["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]
