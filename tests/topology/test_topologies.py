"""Unit tests for topology construction and routing trees."""

from __future__ import annotations

import pytest

from repro.phy.propagation import UnitDiskPropagation, distance
from repro.topology.base import Topology, build_routing_tree
from repro.topology.concentric import concentric_node_count, concentric_topology
from repro.topology.hidden_node import NODE_A, NODE_B, NODE_C, hidden_node_topology
from repro.topology.iotlab import (
    STAR_CENTER,
    STAR_LEAVES,
    TREE_SINK,
    iot_lab_star_topology,
    iot_lab_tree_topology,
)
from repro.topology.random_topo import random_topology


class TestTopologyBase:
    def test_links_and_neighbours(self):
        topo = Topology(positions={0: (0, 0), 1: (1, 0), 2: (2, 0)})
        topo.add_link(0, 1)
        topo.add_link(1, 2)
        assert topo.connected(0, 1) and topo.connected(1, 0)
        assert not topo.connected(0, 2)
        assert topo.neighbours(1) == [0, 2]

    def test_self_link_rejected(self):
        topo = Topology(positions={0: (0, 0)})
        with pytest.raises(ValueError):
            topo.add_link(0, 0)

    def test_derive_links_from_propagation(self):
        topo = Topology(positions={0: (0, 0), 1: (5, 0), 2: (50, 0)})
        topo.derive_links(UnitDiskPropagation(10.0))
        assert topo.connected(0, 1)
        assert not topo.connected(0, 2)

    def test_routing_tree_minimum_hops(self):
        positions = {0: (0, 0), 1: (1, 0), 2: (2, 0), 3: (3, 0)}
        topo = Topology(positions=positions, sink=0)
        for a, b in ((0, 1), (1, 2), (2, 3), (0, 2)):
            topo.add_link(a, b)
        parents = topo.build_routing_tree(0)
        assert parents[1] == 0
        assert parents[2] == 0          # direct link beats the two-hop path
        assert parents[3] == 2
        assert topo.hop_count(3) == 2
        assert topo.depth() == 3

    def test_disconnected_node_raises(self):
        topo = Topology(positions={0: (0, 0), 1: (1, 0), 2: (100, 0)}, sink=0)
        topo.add_link(0, 1)
        with pytest.raises(ValueError):
            topo.build_routing_tree(0)

    def test_build_routing_tree_unknown_sink(self):
        with pytest.raises(KeyError):
            build_routing_tree({0: (0, 0)}, set(), sink=99)


class TestHiddenNode:
    def test_structure(self):
        topo = hidden_node_topology()
        assert topo.num_nodes == 3
        assert topo.sink == NODE_B
        assert topo.connected(NODE_A, NODE_B)
        assert topo.connected(NODE_B, NODE_C)
        assert not topo.connected(NODE_A, NODE_C)
        assert topo.parent(NODE_A) == NODE_B
        assert topo.parent(NODE_B) is None

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            hidden_node_topology(link_distance=0.0)


class TestIotLab:
    def test_tree_has_ten_nodes_and_depth_four(self):
        topo = iot_lab_tree_topology()
        assert topo.num_nodes == 10
        assert topo.sink == TREE_SINK
        assert topo.depth() == 4
        # Every non-sink node has a parent and all parents are nodes of the tree.
        for node in topo.node_ids:
            if node != TREE_SINK:
                assert topo.parent(node) in topo.positions

    def test_tree_siblings_are_connected(self):
        topo = iot_lab_tree_topology()
        assert topo.connected(18, 15)   # children of the sink
        assert topo.connected(36, 41)   # children of node 18

    def test_star_is_fully_connected(self):
        topo = iot_lab_star_topology()
        assert topo.num_nodes == 17
        assert topo.sink == STAR_CENTER
        ids = topo.node_ids
        for i, a in enumerate(ids):
            for b in ids[i + 1:]:
                assert topo.connected(a, b)
        assert set(STAR_LEAVES).issubset(set(ids))


class TestConcentric:
    @pytest.mark.parametrize("rings, expected", [(1, 7), (2, 19), (3, 43), (4, 91)])
    def test_node_counts_match_paper(self, rings, expected):
        assert concentric_node_count(rings) == expected
        topo = concentric_topology(rings, ring_spacing=40.0)
        assert topo.num_nodes == expected

    def test_all_nodes_route_to_the_sink(self):
        topo = concentric_topology(2)
        for node in topo.node_ids:
            if node != topo.sink:
                assert topo.hop_count(node) >= 1

    def test_outer_ring_nodes_are_multiple_hops_away(self):
        topo = concentric_topology(3)
        hop_counts = [topo.hop_count(n) for n in topo.node_ids if n != topo.sink]
        assert max(hop_counts) >= 3

    def test_hidden_nodes_exist(self):
        """Nodes on opposite sides of the first ring cannot hear each other."""
        topo = concentric_topology(1, ring_spacing=40.0)
        ring_nodes = [n for n in topo.node_ids if n != topo.sink]
        opposite_pairs = [
            (a, b)
            for a in ring_nodes
            for b in ring_nodes
            if a < b and distance(topo.position(a), topo.position(b)) > 60.0
        ]
        assert opposite_pairs
        assert all(not topo.connected(a, b) for a, b in opposite_pairs)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            concentric_topology(0)
        with pytest.raises(ValueError):
            concentric_node_count(-1)


class TestRandomTopology:
    def test_connected_and_reproducible(self):
        topo_a = random_topology(12, seed=3)
        topo_b = random_topology(12, seed=3)
        assert topo_a.positions == topo_b.positions
        for node in topo_a.node_ids:
            if node != topo_a.sink:
                assert topo_a.hop_count(node) >= 1

    def test_different_seeds_differ(self):
        assert random_topology(10, seed=1).positions != random_topology(10, seed=2).positions

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            random_topology(0)
